// The adversarial matrix fuzzer: the catalog really contains the hazards it
// promises, every case is a valid CSR, and every lossless conversion in
// src/sparse/ round-trips each case.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "sparse/delta_csr.hpp"
#include "verify/differential.hpp"
#include "verify/fuzz.hpp"

namespace spmvopt::verify {
namespace {

const std::vector<FuzzCase>& suite() {
  static const std::vector<FuzzCase> s = adversarial_suite();
  return s;
}

const CsrMatrix& find(const std::string& name) {
  for (const auto& c : suite())
    if (c.name == name) return c.matrix;
  ADD_FAILURE() << "no catalog case named " << name;
  static const CsrMatrix empty;
  return empty;
}

TEST(FuzzCatalog, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const auto& c : suite()) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate: " << c.name;
  }
  EXPECT_GE(suite().size(), 18u);
}

TEST(FuzzCatalog, EveryCaseIsValidCsr) {
  for (const auto& c : suite()) {
    const CsrMatrix& a = c.matrix;
    ASSERT_GT(a.nrows(), 0) << c.name;
    ASSERT_GT(a.ncols(), 0) << c.name;
    EXPECT_EQ(a.rowptr()[0], 0) << c.name;
    EXPECT_EQ(a.rowptr()[a.nrows()], a.nnz()) << c.name;
    for (index_t i = 0; i < a.nrows(); ++i) {
      EXPECT_LE(a.rowptr()[i], a.rowptr()[i + 1]) << c.name;
      for (index_t k = a.rowptr()[i]; k < a.rowptr()[i + 1]; ++k) {
        EXPECT_GE(a.colind()[k], 0) << c.name;
        EXPECT_LT(a.colind()[k], a.ncols()) << c.name;
        if (k > a.rowptr()[i]) {
          EXPECT_LT(a.colind()[k - 1], a.colind()[k]) << c.name;
        }
      }
    }
    for (index_t k = 0; k < a.nnz(); ++k)
      EXPECT_TRUE(std::isfinite(a.values()[k])) << c.name;
  }
}

TEST(FuzzCatalog, IsDeterministic) {
  const auto again = adversarial_suite();
  ASSERT_EQ(again.size(), suite().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].name, suite()[i].name);
    EXPECT_TRUE(again[i].matrix.equals(suite()[i].matrix)) << again[i].name;
  }
}

TEST(FuzzCatalog, ContainsEmptyRowsAndColumns) {
  const CsrMatrix& a = find("empty-rows-and-cols");
  index_t empty_rows = 0;
  std::set<index_t> used_cols;
  for (index_t i = 0; i < a.nrows(); ++i) {
    if (a.row_nnz(i) == 0) ++empty_rows;
    for (index_t k = a.rowptr()[i]; k < a.rowptr()[i + 1]; ++k)
      used_cols.insert(a.colind()[k]);
  }
  EXPECT_GT(empty_rows, a.nrows() / 2);
  EXPECT_LT(static_cast<index_t>(used_cols.size()), a.ncols() / 2);

  const CsrMatrix& zero = find("all-empty-16x16");
  EXPECT_EQ(zero.nnz(), 0);
  EXPECT_EQ(zero.nrows(), 16);
}

TEST(FuzzCatalog, ContainsSingleFullyDenseRow) {
  const CsrMatrix& a = find("single-dense-row");
  index_t dense_rows = 0;
  for (index_t i = 0; i < a.nrows(); ++i)
    if (a.row_nnz(i) == a.ncols()) ++dense_rows;
  EXPECT_EQ(dense_rows, 1);
}

TEST(FuzzCatalog, GapCasesPinDeltaWidthBoundaries) {
  EXPECT_EQ(DeltaCsrMatrix::required_width(find("gap-255-u8-max")),
            DeltaWidth::U8);
  EXPECT_EQ(DeltaCsrMatrix::required_width(find("gap-256-u16-min")),
            DeltaWidth::U16);
  EXPECT_EQ(DeltaCsrMatrix::required_width(find("gap-65535-u16-max")),
            DeltaWidth::U16);
  EXPECT_FALSE(
      DeltaCsrMatrix::required_width(find("gap-65536-unencodable")).has_value());
}

TEST(FuzzCatalog, DegenerateShapesArePresent) {
  EXPECT_EQ(find("row-vector-1x300").nrows(), 1);
  EXPECT_EQ(find("col-vector-300x1").ncols(), 1);
  const CsrMatrix& one = find("single-element-1x1");
  EXPECT_EQ(one.nrows(), 1);
  EXPECT_EQ(one.ncols(), 1);
  EXPECT_EQ(one.nnz(), 1);
}

TEST(FuzzCatalog, DuplicateHeavyCooSummedExactly) {
  const CsrMatrix& a = find("duplicate-heavy-coo");
  // Row i holds 0.5+0.5 on the diagonal and five (i+1)/5 contributions
  // summed at one off-diagonal (or merged into the diagonal when they
  // collide); either way the row total is exactly (i+1) + 1.
  for (index_t i = 0; i < a.nrows(); ++i) {
    value_t row_sum = 0.0;
    for (index_t k = a.rowptr()[i]; k < a.rowptr()[i + 1]; ++k)
      row_sum += a.values()[k];
    EXPECT_NEAR(row_sum, static_cast<value_t>(i + 1) + 1.0, 1e-12) << i;
  }
}

TEST(FuzzCatalog, ValueCasesSpanExtremeMagnitudes) {
  const CsrMatrix& den = find("denormal-values");
  bool has_denormal = false;
  for (index_t k = 0; k < den.nnz(); ++k)
    if (den.values()[k] != 0.0 &&
        std::abs(den.values()[k]) < std::numeric_limits<double>::min())
      has_denormal = true;
  EXPECT_TRUE(has_denormal);

  const CsrMatrix& huge = find("huge-values");
  double max_mag = 0.0;
  for (index_t k = 0; k < huge.nnz(); ++k)
    max_mag = std::max(max_mag, std::abs(huge.values()[k]));
  EXPECT_GE(max_mag, 1e150);
}

TEST(FuzzCatalog, RandomPathologicalIsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ull, 9ull, 1234567ull}) {
    const CsrMatrix a = random_pathological(seed);
    const CsrMatrix b = random_pathological(seed);
    EXPECT_GT(a.nrows(), 0);
    EXPECT_TRUE(a.equals(b)) << "seed " << seed;
  }
  EXPECT_FALSE(random_pathological(1).equals(random_pathological(2)));
}

TEST(FuzzCatalog, EveryConversionRoundTripsEveryCase) {
  for (const auto& c : suite()) {
    const auto failures = check_conversions(c.matrix);
    EXPECT_TRUE(failures.empty()) << c.name << ": " << describe(failures);
  }
}

TEST(FuzzCatalog, ConversionsRoundTripRandomPathological) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const auto failures = check_conversions(random_pathological(seed));
    EXPECT_TRUE(failures.empty()) << "seed " << seed << ": "
                                  << describe(failures);
  }
}

}  // namespace
}  // namespace spmvopt::verify
