// Comparator self-test — the statistical regression gate.
//
// The two acceptance properties from the issue: an injected 20% regression
// with sane confidence intervals MUST be flagged, and comparing a document
// against itself MUST flag nothing.
#include "report/compare.hpp"

#include <gtest/gtest.h>

namespace spmvopt::report {
namespace {

BenchResult cell(const std::string& matrix, const std::string& variant,
                 double gflops, double half_width, int threads = 4) {
  BenchResult r;
  r.matrix = matrix;
  r.family = "dense";
  r.classes = "{CMP}";
  r.variant = variant;
  r.plan = variant;
  r.threads = threads;
  r.nrows = 100;
  r.ncols = 100;
  r.nnz = 1000;
  r.gflops = gflops;
  r.ci_lo = gflops - half_width;
  r.ci_hi = gflops + half_width;
  r.samples_kept = 5;
  return r;
}

BenchDocument doc_with(std::vector<BenchResult> results) {
  BenchDocument doc;
  doc.kind = "kernels";
  doc.suite = "smoke";
  doc.environment.cpu_model = "test-cpu";
  doc.environment.threads = 4;
  doc.environment.iterations = 16;
  doc.environment.runs = 5;
  doc.results = std::move(results);
  return doc;
}

TEST(ReportCompare, IdenticalDocumentsAreAllUnchanged) {
  const BenchDocument doc = doc_with({cell("a", "baseline", 10.0, 0.2),
                                      cell("a", "vec", 20.0, 0.3),
                                      cell("b", "baseline", 5.0, 0.1)});
  auto r = compare_documents(doc, doc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().regressed, 0);
  EXPECT_EQ(r.value().improved, 0);
  EXPECT_EQ(r.value().unchanged, 3);
  EXPECT_FALSE(r.value().has_regressions());
}

TEST(ReportCompare, TwentyPercentRegressionIsFlagged) {
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 0.2)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 8.0, 0.2)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().regressed, 1);
  EXPECT_TRUE(r.value().has_regressions());
  ASSERT_EQ(r.value().cells.size(), 1u);
  EXPECT_EQ(r.value().cells[0].verdict, Verdict::Regressed);
  EXPECT_NEAR(r.value().cells[0].rel_change, -0.2, 1e-12);
}

TEST(ReportCompare, ImprovementIsSymmetric) {
  const BenchDocument oldd = doc_with({cell("a", "baseline", 8.0, 0.2)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 10.0, 0.2)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().improved, 1);
  EXPECT_EQ(r.value().regressed, 0);
}

TEST(ReportCompare, OverlappingIntervalsSuppressTheGate) {
  // 20% down but the CIs overlap: noise, not a regression.
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 3.0)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 8.0, 3.0)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().regressed, 0);
  EXPECT_EQ(r.value().unchanged, 1);
}

TEST(ReportCompare, SmallDeltaBelowThresholdIsUnchanged) {
  // 3% down with razor-sharp CIs: below the 5% threshold, still unchanged.
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 0.001)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 9.7, 0.001)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().regressed, 0);
}

TEST(ReportCompare, ThresholdIsConfigurable) {
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 0.001)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 9.7, 0.001)});
  CompareConfig cfg;
  cfg.rel_threshold = 0.02;
  auto r = compare_documents(oldd, newd, cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().regressed, 1);
}

TEST(ReportCompare, DegenerateIntervalsFallBackToValueComparison) {
  // Single-sample documents (lo == hi == mean) must still gate.
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 0.0)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 8.0, 0.0)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().regressed, 1);
}

TEST(ReportCompare, AddedAndRemovedCellsNeverGate) {
  const BenchDocument oldd = doc_with(
      {cell("a", "baseline", 10.0, 0.2), cell("gone", "baseline", 9.0, 0.2)});
  const BenchDocument newd = doc_with(
      {cell("a", "baseline", 10.0, 0.2), cell("new", "baseline", 1.0, 0.1)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().removed, 1);
  EXPECT_EQ(r.value().added, 1);
  EXPECT_EQ(r.value().regressed, 0);
  EXPECT_FALSE(r.value().has_regressions());
}

TEST(ReportCompare, CellsKeyOnMatrixVariantThreads) {
  // Same matrix+variant at a different thread count is a different cell.
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 0.2, 2)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 8.0, 0.2, 4)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().removed, 1);
  EXPECT_EQ(r.value().added, 1);
  EXPECT_EQ(r.value().regressed, 0);
}

TEST(ReportCompare, KindMismatchIsFormatError) {
  BenchDocument kernels = doc_with({});
  BenchDocument plans = doc_with({});
  plans.kind = "plans";
  auto r = compare_documents(kernels, plans);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
}

TEST(ReportCompare, EnvironmentDriftIsSurfaced) {
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 0.2)});
  BenchDocument newd = doc_with({cell("a", "baseline", 10.0, 0.2)});
  newd.environment.cpu_model = "other-cpu";
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().comparable_environment);
}

TEST(ReportCompare, SummaryStringCountsVerdicts) {
  const BenchDocument oldd = doc_with({cell("a", "baseline", 10.0, 0.2)});
  const BenchDocument newd = doc_with({cell("a", "baseline", 8.0, 0.2)});
  auto r = compare_documents(oldd, newd);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().summary().find("1 regressed"), std::string::npos);
}

}  // namespace
}  // namespace spmvopt::report
