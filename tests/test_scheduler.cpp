// The work-stealing execution scheduler (engine/steal_pool, DESIGN.md §12):
// Chase-Lev deque invariants under contention, exact-once span execution,
// park/unpark races, deterministic victim selection, and the multi-caller
// concurrency battery — K threads running the full adversarial fuzz catalog
// through one shared pool against the Kahan oracle, plus the mid-dispatch
// cancellation-granularity regression.
//
// Everything here must pass under TSan (the CI server shard) and ASan+UBSan:
// the deque tests are exactly the interleavings a data race would corrupt.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/execution_engine.hpp"
#include "engine/steal_pool.hpp"
#include "gen/generators.hpp"
#include "optimize/optimized_spmv.hpp"
#include "optimize/plan.hpp"
#include "robust/cancel.hpp"
#include "robust/error.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracle.hpp"

namespace spmvopt {
namespace {

using engine::ChaseLevDeque;
using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::StealPool;
using engine::StealPoolConfig;

// ------------------------------------------------------------- deque tests

TEST(ChaseLev, OwnerPopsLifoThievesStealFifo) {
  ChaseLevDeque d;
  for (std::uint64_t v = 1; v <= 4; ++v) d.push(v);
  EXPECT_EQ(d.size_estimate(), 4);

  std::uint64_t w = 0;
  ASSERT_EQ(d.steal(w), ChaseLevDeque::Steal::Ok);  // oldest first
  EXPECT_EQ(w, 1u);
  ASSERT_TRUE(d.pop(w));  // newest first
  EXPECT_EQ(w, 4u);
  ASSERT_EQ(d.steal(w), ChaseLevDeque::Steal::Ok);
  EXPECT_EQ(w, 2u);
  ASSERT_TRUE(d.pop(w));  // the last element: owner wins the CAS race
  EXPECT_EQ(w, 3u);
  EXPECT_FALSE(d.pop(w));
  EXPECT_EQ(d.steal(w), ChaseLevDeque::Steal::Empty);
}

/// Owner pushes and intermittently pops while thieves steal: every value is
/// consumed exactly once — no loss, no duplication.  This is the core deque
/// invariant; a broken last-element CAS or a stale ring read duplicates or
/// drops a word and fails the per-value count.
TEST(ChaseLev, ContendedConsumptionIsExactlyOnce) {
  constexpr int kValues = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque d(2);  // start tiny: force concurrent growth too
  std::vector<std::atomic<int>> seen(kValues + 1);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::uint64_t w = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal(w) == ChaseLevDeque::Steal::Ok)
          seen[w].fetch_add(1, std::memory_order_relaxed);
      }
      while (d.steal(w) == ChaseLevDeque::Steal::Ok)
        seen[w].fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::uint64_t w = 0;
  for (int v = 1; v <= kValues; ++v) {
    d.push(static_cast<std::uint64_t>(v));
    if (v % 3 == 0 && d.pop(w)) seen[w].fetch_add(1, std::memory_order_relaxed);
  }
  while (d.pop(w)) seen[w].fetch_add(1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  for (int v = 1; v <= kValues; ++v)
    ASSERT_EQ(seen[v].load(), 1) << "value " << v;
}

// -------------------------------------------------------------- pool tests

struct SpanCounters {
  explicit SpanCounters(int n) : counts(static_cast<std::size_t>(n)) {}
  std::vector<std::atomic<int>> counts;
};

void count_span(void* ctx, int span, int /*nspans*/) {
  static_cast<SpanCounters*>(ctx)->counts[static_cast<std::size_t>(span)]
      .fetch_add(1, std::memory_order_relaxed);
}

/// Exact cover: K submitter threads x D dispatches x several span counts
/// through one pool — every span of every dispatch executes exactly once.
/// This is the invariant the lazy-cloning protocol must keep: a lost clone
/// leaves a count at 0, a double execution pushes one to 2.
TEST(StealPool, ConcurrentDispatchesCoverEverySpanExactlyOnce) {
  StealPool pool({.nthreads = 3});
  constexpr int kCallers = 4;
  constexpr int kDispatches = 50;
  const int span_counts[] = {1, 2, 3, 7, 16};

  std::vector<std::unique_ptr<SpanCounters>> groups;
  for (int c = 0; c < kCallers; ++c)
    for (int d = 0; d < kDispatches; ++d)
      for (int n : span_counts) groups.push_back(std::make_unique<SpanCounters>(n));

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  std::size_t gi = 0;
  for (int c = 0; c < kCallers; ++c) {
    const std::size_t base = gi;
    callers.emplace_back([&pool, &groups, base, &span_counts] {
      std::size_t g = base;
      for (int d = 0; d < kDispatches; ++d)
        for (int n : span_counts)
          pool.run_spans(count_span, groups[g++].get(), n);
    });
    gi += static_cast<std::size_t>(kDispatches) * std::size(span_counts);
  }
  for (std::thread& t : callers) t.join();

  for (const auto& g : groups)
    for (std::size_t s = 0; s < g->counts.size(); ++s)
      ASSERT_EQ(g->counts[s].load(), 1) << "span " << s;

  const engine::StealPoolStats st = pool.stats();
  EXPECT_EQ(st.dispatches,
            static_cast<std::uint64_t>(kCallers) * kDispatches *
                std::size(span_counts));
  // Every span of every group ran exactly once, so the task counter is the
  // exact total span count (inline fallbacks count their spans too).
  std::uint64_t total_spans = 0;
  for (int n : span_counts) total_spans += static_cast<std::uint64_t>(n);
  EXPECT_EQ(st.tasks, total_spans * kCallers * kDispatches);
}

/// Saturated submitters fall back to inline execution, still exactly once.
TEST(StealPool, SaturatedSubmitterSlotsRunInline) {
  StealPool pool({.nthreads = 2, .max_submitters = 1});
  constexpr int kCallers = 4;
  constexpr int kDispatches = 40;
  constexpr int kSpans = 5;

  std::vector<std::unique_ptr<SpanCounters>> groups;
  for (int i = 0; i < kCallers * kDispatches; ++i)
    groups.push_back(std::make_unique<SpanCounters>(kSpans));

  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int d = 0; d < kDispatches; ++d)
        pool.run_spans(count_span, groups[static_cast<std::size_t>(c) * kDispatches + d].get(),
                       kSpans);
    });
  }
  for (std::thread& t : callers) t.join();

  for (const auto& g : groups)
    for (std::size_t s = 0; s < g->counts.size(); ++s)
      ASSERT_EQ(g->counts[s].load(), 1);
}

/// Park/unpark races: let the workers park, then burst dispatches at them,
/// repeatedly.  A lost wakeup deadlocks this test (the ctest TIMEOUT is the
/// failure detector); the stats assert proves the park path actually ran.
TEST(StealPool, IdleBurstCyclesNeverLoseAWakeup) {
  StealPool pool({.nthreads = 2, .spin_sweeps = 2});  // park fast
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // let them park
    SpanCounters g(8);
    pool.run_spans(count_span, &g, 8);
    for (std::size_t s = 0; s < g.counts.size(); ++s)
      ASSERT_EQ(g.counts[s].load(), 1) << "cycle " << cycle;
  }
  EXPECT_GT(pool.stats().parks, 0u);
}

TEST(StealPool, RecycleRespawnsWorkersAndKeepsServing) {
  StealPool pool({.nthreads = 2});
  SpanCounters before(4);
  pool.run_spans(count_span, &before, 4);
  pool.recycle();
  SpanCounters after(4);
  pool.run_spans(count_span, &after, 4);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(before.counts[s].load(), 1);
    EXPECT_EQ(after.counts[s].load(), 1);
  }
  EXPECT_EQ(pool.stats().recycles, 1u);
}

TEST(StealPool, StealScheduleIsDeterministicAndValid) {
  constexpr std::uint64_t kSeed = 0xDEADBEEFull;
  constexpr int kDeques = 6;
  const auto a = StealPool::steal_schedule(kSeed, 2, kDeques, 64);
  const auto b = StealPool::steal_schedule(kSeed, 2, kDeques, 64);
  EXPECT_EQ(a, b);  // pure function of (seed, self)

  std::set<int> victims;
  for (int v : a) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, kDeques);
    EXPECT_NE(v, 2);  // never probes itself
    victims.insert(v);
  }
  EXPECT_EQ(victims.size(), static_cast<std::size_t>(kDeques - 1))
      << "64 draws must cover all 5 other slots under this seed";

  // Different slots get different probe orders (they'd otherwise convoy).
  EXPECT_NE(a, StealPool::steal_schedule(kSeed, 3, kDeques, 64));
  // Different seeds replay differently.
  EXPECT_NE(a, StealPool::steal_schedule(kSeed + 1, 2, kDeques, 64));
}

// ------------------------------------------- pool-backed engine + SpMV

TEST(PooledEngine, SizeOneDispatchBypassesThePool) {
  StealPool pool({.nthreads = 2});
  ExecutionEngine eng(EngineConfig{.nthreads = 1, .pool = &pool});
  ASSERT_TRUE(eng.pooled());
  const std::uint64_t before = pool.stats().dispatches;
  std::atomic<int> ran{0};
  eng.parallel([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  // The size-1 fast path is a direct call: no pool traffic at all.
  EXPECT_EQ(pool.stats().dispatches, before);
}

TEST(PooledEngine, RecycleDelegatesToThePool) {
  StealPool pool({.nthreads = 2});
  ExecutionEngine eng(EngineConfig{.nthreads = 4, .pool = &pool});
  ASSERT_TRUE(eng.recycle());
  EXPECT_EQ(pool.stats().recycles, 1u);
  std::atomic<int> ran{0};
  eng.parallel([&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

/// The multi-caller concurrency battery: K threads each run the full
/// adversarial fuzz catalog through ONE shared pool, at several engine span
/// counts and across the plan families with distinct pooled code paths
/// (baseline static, dynamic cursor, merge fix-up, split long-row
/// reduction), every result checked against the Kahan oracle.  Concurrent
/// run() calls on the SAME OptimizedSpmv instance are part of the contract
/// being tested (the server's hot-cache-entry case).
TEST(PooledSpmv, ConcurrentCallersMatchOracleAcrossCatalog) {
  StealPool pool({.nthreads = 2});
  const auto cases = verify::adversarial_suite();

  optimize::Plan dynamic_plan;
  dynamic_plan.sched = kernels::Sched::Dynamic;
  dynamic_plan.dynamic_chunk = 4;
  optimize::Plan merge_plan;
  merge_plan.merge_path = true;
  optimize::Plan split_plan;
  split_plan.split_long_rows = true;
  const optimize::Plan plans[] = {optimize::Plan{}, dynamic_plan, merge_plan,
                                  split_plan};

  struct Bound {
    const CsrMatrix* A;
    const char* name;
    optimize::OptimizedSpmv spmv;
    std::vector<value_t> x;
  };
  std::vector<std::unique_ptr<ExecutionEngine>> engines;
  std::vector<Bound> bound;
  for (int nt : {1, 2, 3, 7, 16}) {
    engines.push_back(std::make_unique<ExecutionEngine>(
        EngineConfig{.nthreads = nt, .pool = &pool}));
    ExecutionEngine& eng = *engines.back();
    for (const optimize::Plan& plan : plans) {
      for (const auto& fc : cases) {
        Bound b;
        b.A = &fc.matrix;
        b.name = fc.name.c_str();
        b.spmv = optimize::OptimizedSpmv::create(fc.matrix, plan, eng);
        b.x = gen::test_vector(fc.matrix.ncols());
        bound.push_back(std::move(b));
      }
    }
  }

  constexpr int kCallers = 4;
  std::vector<std::string> failures(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&bound, &failures, c] {
      for (const Bound& b : bound) {
        std::vector<value_t> y(static_cast<std::size_t>(b.A->nrows()), -1.0);
        b.spmv.run(b.x.data(), y.data());
        const auto report = verify::check_spmv(*b.A, b.x, y);
        if (!report.pass()) {
          failures[static_cast<std::size_t>(c)] =
              std::string(b.name) + " [" + b.spmv.plan().to_string() +
              "/nt=" + std::to_string(b.spmv.nthreads()) +
              "]: " + report.to_string();
          return;
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (const std::string& f : failures) EXPECT_TRUE(f.empty()) << f;
}

/// Cancellation granularity across stolen sub-spans: a dispatch whose spans
/// are distributed over pool workers must observe a deadline trip within
/// one kCancelChunkRows chunk — not run its whole partition first.  The
/// token below is already expired when run() starts, so every span must
/// abort at its FIRST poll; if polling happened per-partition instead of
/// per-chunk, the full matvec would complete and report success.
TEST(PooledSpmv, ExpiredDeadlineTripsWithinOneChunk) {
  StealPool pool({.nthreads = 2});
  ExecutionEngine eng(EngineConfig{.nthreads = 4, .pool = &pool});
  const CsrMatrix A = gen::stencil_3d_7pt(32, 32, 32);  // 32k rows: > 1 chunk
  const std::vector<value_t> x = gen::test_vector(A.ncols());

  for (const bool use_merge : {false, true}) {
    optimize::Plan plan;
    plan.merge_path = use_merge;
    const auto spmv = optimize::OptimizedSpmv::create(A, plan, eng);
    std::vector<value_t> y(static_cast<std::size_t>(A.nrows()));

    const robust::CancelToken tok = robust::CancelToken::after_seconds(0.0);
    ASSERT_TRUE(tok.cancelled());
    Status st = spmv.run(x.data(), y.data(), tok);
    ASSERT_FALSE(st.ok()) << "an expired deadline must abort the pooled run";
    EXPECT_EQ(std::move(st).error().category(),
              ErrorCategory::DeadlineExceeded);
  }

  // A live token on the same instances still completes and verifies.
  optimize::Plan plan;
  const auto spmv = optimize::OptimizedSpmv::create(A, plan, eng);
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()));
  Status ok = spmv.run(x.data(), y.data(), robust::CancelToken::never());
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(verify::check_spmv(A, x, y).pass());
}

/// Mid-flight trip: a token that is LIVE when the dispatch starts and is
/// cancelled concurrently while spans execute on pool workers.  Retried
/// because the race is real — the matvec may legitimately finish first on a
/// fast machine — but the matrix is large enough (1.8M nnz, memory-bound)
/// that a 100 us cancel lands mid-run within a few attempts; every trip must
/// surface as a typed Cancelled error, never a silent success-with-garbage.
TEST(PooledSpmv, MidDispatchCancelUnwindsAcrossStolenSpans) {
  StealPool pool({.nthreads = 2});
  ExecutionEngine eng(EngineConfig{.nthreads = 4, .pool = &pool});
  const CsrMatrix A = gen::stencil_3d_7pt(64, 64, 64);
  const std::vector<value_t> x = gen::test_vector(A.ncols());
  const auto spmv =
      optimize::OptimizedSpmv::create(A, optimize::Plan{}, eng);
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()));

  bool tripped = false;
  for (int attempt = 0; attempt < 50 && !tripped; ++attempt) {
    const robust::CancelToken tok;  // live, no deadline
    std::thread canceller([&tok] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      tok.cancel();
    });
    Status st = spmv.run(x.data(), y.data(), tok);
    canceller.join();
    if (!st.ok()) {
      EXPECT_EQ(std::move(st).error().category(), ErrorCategory::Cancelled);
      tripped = true;
    }
  }
  EXPECT_TRUE(tripped) << "a 100 us cancel never landed inside a ~1 ms "
                          "dispatch across 50 attempts";
}

/// Batched pooled runs: run_many through the pool (per-item task groups)
/// matches per-item run() bitwise, and a cancelled batch reports the typed
/// error.
TEST(PooledSpmv, RunManyMatchesSequentialRuns) {
  StealPool pool({.nthreads = 2});
  ExecutionEngine eng(EngineConfig{.nthreads = 3, .pool = &pool});
  const CsrMatrix A = gen::stencil_3d_7pt(12, 12, 12);
  optimize::Plan plan;
  plan.sched = kernels::Sched::Dynamic;
  const auto spmv = optimize::OptimizedSpmv::create(A, plan, eng);

  constexpr int kRhs = 3;
  const auto n = static_cast<std::size_t>(A.nrows());
  std::vector<value_t> X;
  for (int r = 0; r < kRhs; ++r) {
    const auto xr = gen::test_vector(A.ncols(), 100 + static_cast<std::uint64_t>(r));
    X.insert(X.end(), xr.begin(), xr.end());
  }
  std::vector<value_t> Y_batch(n * kRhs), Y_seq(n * kRhs);
  spmv.run_many(X.data(), Y_batch.data(), kRhs);
  for (int r = 0; r < kRhs; ++r)
    spmv.run(X.data() + static_cast<std::size_t>(r) * A.ncols(),
             Y_seq.data() + static_cast<std::size_t>(r) * n);
  for (std::size_t i = 0; i < Y_batch.size(); ++i)
    ASSERT_EQ(Y_batch[i], Y_seq[i]) << "index " << i;

  const robust::CancelToken expired = robust::CancelToken::after_seconds(0.0);
  Status st = spmv.run_many(X.data(), Y_batch.data(), kRhs, expired);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(std::move(st).error().category(), ErrorCategory::DeadlineExceeded);
}

}  // namespace
}  // namespace spmvopt
