// End-to-end tests for the spmvoptd server subsystem (DESIGN.md §9):
// protocol codec round-trips and truncation, the plan cache's amortization
// ladder (hot / warm / persist / miss), eviction under a byte budget,
// overload shedding and rejection, the socket transport with concurrent
// clients (the TSan shard exercises this), and the server fault points.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "gen/generators.hpp"
#include "robust/cancel.hpp"
#include "robust/fault_inject.hpp"
#include "server/client.hpp"
#include "server/plan_cache.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/fingerprint.hpp"
#include "verify/oracle.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace spmvopt::server {
namespace {

namespace fs = std::filesystem;

CsrMatrix small_matrix(std::uint64_t seed = 7) {
  return gen::random_uniform(200, 6, seed);
}

/// An IMB monster-row matrix heavy enough that a multi-vector run over it
/// takes tens of milliseconds — comfortably longer than the short deadlines
/// the cancellation tests arm, comfortably shorter than a test timeout.
CsrMatrix heavy_matrix() { return gen::monster_row(50'000, 50'000, 8, 0, 7); }

std::vector<value_t> heavy_rhs(const CsrMatrix& a, int nrhs) {
  std::vector<value_t> X;
  X.reserve(static_cast<std::size_t>(a.ncols()) * static_cast<std::size_t>(nrhs));
  for (int r = 0; r < nrhs; ++r) {
    const auto x = gen::test_vector(a.ncols(), 7 + static_cast<std::uint64_t>(r));
    X.insert(X.end(), x.begin(), x.end());
  }
  return X;
}

/// A unique, auto-cleaned directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("spmvopt_server_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

void expect_ulp_match(const CsrMatrix& A, std::span<const value_t> x,
                      std::span<const value_t> y) {
  const auto report = verify::check_spmv(A, x, y);
  EXPECT_TRUE(report.pass()) << report.to_string();
}

template <class R>
R expect_reply(const Reply& reply) {
  const R* r = std::get_if<R>(&reply);
  if (r == nullptr) {
    const auto* err = std::get_if<ErrorReply>(&reply);
    ADD_FAILURE() << "unexpected reply type"
                  << (err ? ": " + err->message : std::string());
    return R{};
  }
  return *r;
}

ErrorReply expect_error(const Reply& reply, ErrorCategory category) {
  const auto* err = std::get_if<ErrorReply>(&reply);
  if (err == nullptr) {
    ADD_FAILURE() << "expected an ErrorReply";
    return ErrorReply{};
  }
  EXPECT_EQ(static_cast<int>(err->category), static_cast<int>(category))
      << error_category_name(err->category) << ": " << err->message;
  return *err;
}

// ------------------------------------------------------------------- codec

TEST(Protocol, RequestsRoundTrip) {
  const CsrMatrix a = small_matrix();
  const Fingerprint fp = fingerprint_of(a);

  {
    auto r = decode_request(encode_request(SubmitRequest{a}));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<SubmitRequest>(r.value().request);
    EXPECT_TRUE(req.matrix.equals(a));
  }
  {
    RunRequest in;
    in.fp = fp;
    in.x = {1.0, -2.5, 3.25};
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<RunRequest>(r.value().request);
    EXPECT_EQ(req.fp, fp);
    EXPECT_EQ(req.x, in.x);
  }
  {
    RunManyRequest in;
    in.fp = fp;
    in.nrhs = 2;
    in.X = {1.0, 2.0, 3.0, 4.0};
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<RunManyRequest>(r.value().request);
    EXPECT_EQ(req.nrhs, 2);
    EXPECT_EQ(req.X, in.X);
  }
  {
    SolveRequest in;
    in.fp = fp;
    in.method = SolveMethod::Bicgstab;
    in.max_iterations = 321;
    in.rel_tolerance = 1e-6;
    in.b = {0.5, 0.25};
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<SolveRequest>(r.value().request);
    EXPECT_EQ(req.method, SolveMethod::Bicgstab);
    EXPECT_EQ(req.max_iterations, 321);
    EXPECT_DOUBLE_EQ(req.rel_tolerance, 1e-6);
    EXPECT_EQ(req.b, in.b);
  }
  for (const Request& in :
       {Request(StatsRequest{}), Request(PingRequest{}),
        Request(ShutdownRequest{}), Request(CancelRequest{99})}) {
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(r.value().request.index(), in.index());
  }
}

TEST(Protocol, EnvelopeCarriesIdAndDeadline) {
  // The v2 envelope: request_id and deadline_ms survive the codec, and a
  // reply echoes the id of the request it answers.
  RunRequest in;
  in.fp = fingerprint_of(small_matrix());
  in.x = {1.0, 2.0};
  const RequestHeader hdr{0xDEADBEEFCAFEull, 1500};
  const std::string payload = encode_request(Request(in), hdr);

  const auto peeked = peek_request_header(payload);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->request_id, hdr.request_id);
  EXPECT_EQ(peeked->deadline_ms, hdr.deadline_ms);

  auto r = decode_request(payload);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().header.request_id, hdr.request_id);
  EXPECT_EQ(r.value().header.deadline_ms, hdr.deadline_ms);

  auto rep = decode_reply(encode_reply(PongReply{}, hdr.request_id));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().request_id, hdr.request_id);
}

TEST(Protocol, V1PayloadIsATypedVersionRejection) {
  // A pre-v2 frame starts with its raw type byte (Ping = 6), not the 0xA2
  // magic.  It must decode to a Format error naming the mismatch — a typed
  // rejection an old client can log, never a misparse.
  std::string v1_ping(1, static_cast<char>(6));
  auto r = decode_request(v1_ping);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
  EXPECT_NE(r.error().message().find("v1"), std::string::npos)
      << r.error().message();
  // peek still routes it (raw v1 type byte) so the reader can reply.
  EXPECT_EQ(peek_type(v1_ping), MsgType::Ping);
  EXPECT_FALSE(peek_request_header(v1_ping).has_value());
}

TEST(Protocol, CancelRoundTripsWithItsTarget) {
  auto r = decode_request(encode_request(CancelRequest{1234}));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(std::get<CancelRequest>(r.value().request).target_id, 1234u);

  CancelReply in;
  in.outcome = CancelReply::Outcome::Running;
  auto rep = decode_reply(encode_reply(in, 7));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(std::get<CancelReply>(rep.value().reply).outcome,
            CancelReply::Outcome::Running);
  EXPECT_EQ(rep.value().request_id, 7u);
}

TEST(Protocol, RepliesRoundTrip) {
  {
    SubmitReply in;
    in.fp = fingerprint_of(small_matrix());
    in.state = CacheState::Warm;
    in.plan = "pf+unroll-vec";
    in.pre_seconds = 0.125;
    auto r = decode_reply(encode_reply(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& rep = std::get<SubmitReply>(r.value().reply);
    EXPECT_EQ(rep.fp, in.fp);
    EXPECT_EQ(rep.state, CacheState::Warm);
    EXPECT_EQ(rep.plan, in.plan);
    EXPECT_DOUBLE_EQ(rep.pre_seconds, 0.125);
  }
  {
    auto r = decode_reply(encode_reply(RunReply{{1.0, 2.0, -3.0}}));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(std::get<RunReply>(r.value().reply).y,
              (std::vector<value_t>{1.0, 2.0, -3.0}));
  }
  {
    SolveReply in;
    in.converged = true;
    in.iterations = 17;
    in.residual = 1e-9;
    in.x = {4.0, 5.0};
    auto r = decode_reply(encode_reply(in));
    ASSERT_TRUE(r.ok());
    const auto& rep = std::get<SolveReply>(r.value().reply);
    EXPECT_TRUE(rep.converged);
    EXPECT_EQ(rep.iterations, 17);
    EXPECT_EQ(rep.x, in.x);
  }
  {
    auto r = decode_reply(encode_reply(
        ErrorReply{ErrorCategory::Resource, /*retryable=*/true, "too big"}));
    ASSERT_TRUE(r.ok());
    const auto& rep = std::get<ErrorReply>(r.value().reply);
    EXPECT_EQ(rep.category, ErrorCategory::Resource);
    EXPECT_TRUE(rep.retryable);
    EXPECT_EQ(rep.message, "too big");
  }
  {
    auto r = decode_reply(encode_reply(PongReply{}));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(std::get<PongReply>(r.value().reply).protocol_version,
              kProtocolVersion);
  }
}

TEST(Protocol, TruncatedPayloadIsARejectedDecode) {
  RunRequest in;
  in.fp = fingerprint_of(small_matrix());
  in.x = {1.0, 2.0, 3.0, 4.0};
  const std::string full = encode_request(in);
  ASSERT_TRUE(decode_request(full).ok());
  // Every strict prefix must be rejected, never crash or mis-parse.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto r = decode_request(full.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(Protocol, TrailingGarbageIsAFormatError) {
  const std::string payload = encode_request(PingRequest{}) + "xx";
  auto r = decode_request(payload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
}

TEST(Protocol, UnknownTypeByteIsAFormatError) {
  std::string payload(1, static_cast<char>(0x33));
  auto r = decode_request(payload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
  EXPECT_FALSE(decode_reply(payload).ok());
}

TEST(Protocol, PeekTypeReadsTheLeadingByte) {
  EXPECT_EQ(peek_type(encode_request(PingRequest{})), MsgType::Ping);
  EXPECT_EQ(peek_type(encode_reply(PongReply{})), MsgType::Pong);
  EXPECT_EQ(peek_type(""), std::nullopt);
}

TEST(Protocol, FramesTraverseASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = encode_request(PingRequest{});
  ASSERT_TRUE(write_frame(fds[0], payload).ok());
  auto got = read_frame(fds[1]);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(*got.value(), payload);
  // Closing the writer yields a clean EOF (nullopt), not an error.
  ::close(fds[0]);
  auto eof = read_frame(fds[1]);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value().has_value());
  ::close(fds[1]);
}

// ---------------------------------------------------- in-process SpmvServer

ServerConfig memory_only_config() {
  ServerConfig cfg;
  cfg.engine_threads = 2;
  return cfg;
}

TEST(SpmvServer, SubmitMissThenHotSkipsThePipeline) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix();

  const auto first =
      expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(first.state, CacheState::Miss);
  EXPECT_EQ(first.fp, fingerprint_of(a));
  EXPECT_FALSE(first.plan.empty());

  const auto second =
      expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(second.state, CacheState::Hot);
  EXPECT_EQ(second.plan, first.plan);
  // The acceptance criterion: a warm job pays zero preprocessing — no
  // feature extraction, no classification, no conversion.
  EXPECT_EQ(second.pre_seconds, 0.0);

  const ServerStats st = srv.stats();
  EXPECT_EQ(st.cache.misses, 1u);
  EXPECT_GE(st.cache.hot_hits, 1u);
  EXPECT_EQ(st.submits, 2u);
  EXPECT_EQ(st.errors, 0u);
}

TEST(SpmvServer, SamePatternNewValuesIsAWarmHit) {
  SpmvServer srv(memory_only_config());
  CsrMatrix a = small_matrix();
  const auto first = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(first.state, CacheState::Miss);

  // Perturb the values only: the structure fingerprint is unchanged, so the
  // plan is reused (no re-classification) but conversion re-runs.
  for (index_t k = 0; k < a.nnz(); ++k) a.values_mut()[k] *= 1.5;
  const auto second = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(second.state, CacheState::Warm);
  EXPECT_EQ(second.plan, first.plan);
  EXPECT_NE(second.fp, first.fp);
  EXPECT_TRUE(second.fp.same_structure(first.fp));
  EXPECT_EQ(srv.stats().cache.warm_hits, 1u);
}

TEST(SpmvServer, MergePlanMatrixHotAndWarmAndCorrect) {
  // An IMB monster-row matrix routes to the merge-path kernel; the plan must
  // survive the cache ladder (miss → hot → warm) and the engine-bound merge
  // execution must match the oracle.
  SpmvServer srv(memory_only_config());
  CsrMatrix a = gen::monster_row(512, 512, 1, 0, 7);

  const auto first = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(first.state, CacheState::Miss);
  EXPECT_NE(first.plan.find("merge"), std::string::npos) << first.plan;

  RunRequest run;
  run.fp = first.fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  ASSERT_EQ(static_cast<index_t>(rep.y.size()), a.nrows());
  expect_ulp_match(a, run.x, rep.y);

  const auto hot = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(hot.state, CacheState::Hot);
  EXPECT_EQ(hot.plan, first.plan);
  EXPECT_EQ(hot.pre_seconds, 0.0);

  // Same structure, new values: warm hit reuses the merge plan without
  // re-classifying.
  for (index_t k = 0; k < a.nnz(); ++k) a.values_mut()[k] *= 2.0;
  const auto warm = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(warm.state, CacheState::Warm);
  EXPECT_EQ(warm.plan, first.plan);
  RunRequest run2;
  run2.fp = warm.fp;
  run2.x = run.x;
  const auto& rep2 = expect_reply<RunReply>(srv.handle(run2));
  expect_ulp_match(a, run2.x, rep2.y);
}

TEST(SpmvServer, RunMatchesTheUlpOracle) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = gen::stencil_2d_5pt(24, 24);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunRequest run;
  run.fp = sub.fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  ASSERT_EQ(static_cast<index_t>(rep.y.size()), a.nrows());
  expect_ulp_match(a, run.x, rep.y);
}

TEST(SpmvServer, RunManyMatchesTheUlpOracle) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix(11);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunManyRequest rm;
  rm.fp = sub.fp;
  rm.nrhs = 3;
  const auto ncols = static_cast<std::size_t>(a.ncols());
  for (int r = 0; r < rm.nrhs; ++r) {
    const auto x = gen::test_vector(a.ncols(), 100 + r);
    rm.X.insert(rm.X.end(), x.begin(), x.end());
  }
  const auto& rep = expect_reply<RunManyReply>(srv.handle(rm));
  ASSERT_EQ(rep.nrhs, 3);
  const auto nrows = static_cast<std::size_t>(a.nrows());
  ASSERT_EQ(rep.Y.size(), 3 * nrows);
  for (int r = 0; r < 3; ++r)
    expect_ulp_match(
        a, std::span(rm.X).subspan(r * ncols, ncols),
        std::span(rep.Y).subspan(static_cast<std::size_t>(r) * nrows, nrows));
}

TEST(SpmvServer, CgSolveConvergesOnAStencil) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);  // SPD
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  SolveRequest sr;
  sr.fp = sub.fp;
  sr.method = SolveMethod::Cg;
  sr.b.assign(static_cast<std::size_t>(a.nrows()), 1.0);
  const auto& rep = expect_reply<SolveReply>(srv.handle(sr));
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.iterations, 0);

  // Check the residual claim independently: ||b - A x|| / ||b|| small.
  std::vector<value_t> ax(static_cast<std::size_t>(a.nrows()));
  a.multiply(rep.x, ax);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    rr += (sr.b[i] - ax[i]) * (sr.b[i] - ax[i]);
    bb += sr.b[i] * sr.b[i];
  }
  EXPECT_LT(rr, 1e-12 * bb);
}

TEST(SpmvServer, UnknownFingerprintIsAFormatError) {
  SpmvServer srv(memory_only_config());
  RunRequest run;
  run.fp = fingerprint_of(small_matrix());
  run.x.assign(static_cast<std::size_t>(small_matrix().ncols()), 1.0);
  expect_error(srv.handle(run), ErrorCategory::Format);
  EXPECT_EQ(srv.stats().errors, 1u);
}

TEST(SpmvServer, MismatchedOperandSizesAreFormatErrors) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix();
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunRequest run;
  run.fp = sub.fp;
  run.x = {1.0};  // wrong length
  expect_error(srv.handle(run), ErrorCategory::Format);

  SolveRequest sr;
  sr.fp = sub.fp;
  sr.b = {1.0};
  expect_error(srv.handle(sr), ErrorCategory::Format);
}

TEST(SpmvServer, StatsReplyIsStructuredJson) {
  SpmvServer srv(memory_only_config());
  (void)srv.handle(SubmitRequest{small_matrix()});
  const auto& rep = expect_reply<StatsReply>(srv.handle(StatsRequest{}));
  EXPECT_NE(rep.json.find("\"schema\": \"spmvopt-server-stats/v2\""),
            std::string::npos);
  EXPECT_NE(rep.json.find("\"misses\": 1"), std::string::npos);
}

TEST(SpmvServer, ShutdownRequestSetsTheFlag) {
  SpmvServer srv(memory_only_config());
  EXPECT_FALSE(srv.shutdown_requested());
  (void)expect_reply<ShutdownReply>(srv.handle(ShutdownRequest{}));
  EXPECT_TRUE(srv.shutdown_requested());
}

// -------------------------------------------------- eviction and admission

TEST(SpmvServer, EvictionUnderATinyByteBudget) {
  const CsrMatrix a = small_matrix(1);
  const CsrMatrix b = small_matrix(2);

  ServerConfig cfg = memory_only_config();
  // Budget fits one matrix (CSR + optimized form), never two.
  cfg.cache.max_resident_bytes = 3 * a.format_bytes();
  SpmvServer srv(cfg);

  const auto sa = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  (void)expect_reply<SubmitReply>(srv.handle(SubmitRequest{b}));
  const ServerStats st = srv.stats();
  EXPECT_GE(st.cache.evictions, 1u);
  EXPECT_LE(st.cache.resident_bytes, cfg.cache.max_resident_bytes);

  // The evicted matrix is gone (memory-only tier): typed Format error.
  RunRequest run;
  run.fp = sa.fp;
  run.x.assign(static_cast<std::size_t>(a.ncols()), 1.0);
  expect_error(srv.handle(run), ErrorCategory::Format);
}

TEST(SpmvServer, MatrixOverTheBudgetIsAResourceError) {
  ServerConfig cfg = memory_only_config();
  cfg.cache.max_resident_bytes = 64;  // nothing real fits
  SpmvServer srv(cfg);
  expect_error(srv.handle(SubmitRequest{small_matrix()}),
               ErrorCategory::Resource);
}

TEST(SpmvServer, ShedSubmitRunsTheBaselinePlan) {
  SpmvServer srv(memory_only_config());
  const auto rep = expect_reply<SubmitReply>(
      srv.handle(SubmitRequest{small_matrix()}, /*shed=*/true));
  // The degradation ladder's middle rung: admitted, but with the
  // classification stage skipped — the always-valid baseline CSR plan.
  EXPECT_EQ(rep.plan, "baseline");
  EXPECT_EQ(srv.stats().shed_submits, 1u);
  EXPECT_EQ(srv.stats().cache.misses, 0u);  // classification never ran
}

// ------------------------------------------------------- persistent tier

TEST(SpmvServer, PersistentTierSurvivesARestart) {
  TempDir dir("persist");
  ServerConfig cfg = memory_only_config();
  cfg.cache.persist_dir = dir.str();

  const CsrMatrix a = small_matrix(5);
  Fingerprint fp;
  {
    SpmvServer first(cfg);
    fp = expect_reply<SubmitReply>(first.handle(SubmitRequest{a})).fp;
    EXPECT_EQ(first.stats().cache.misses, 1u);
  }

  // A fresh server (fresh memory tier) can run the fingerprint directly:
  // matrix and plan come back from disk, classification does not re-run.
  SpmvServer second(cfg);
  RunRequest run;
  run.fp = fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(second.handle(run));
  expect_ulp_match(a, run.x, rep.y);
  const ServerStats st = second.stats();
  EXPECT_EQ(st.cache.persist_hits, 1u);
  EXPECT_EQ(st.cache.misses, 0u);

  // And a re-submit after eviction lands on the warm plan file, not a miss.
  second.cache().evict_all();
  const auto resub = expect_reply<SubmitReply>(second.handle(SubmitRequest{a}));
  EXPECT_EQ(resub.state, CacheState::Warm);
}

TEST(SpmvServer, EvictedEntryReloadsFromDisk) {
  TempDir dir("reload");
  ServerConfig cfg = memory_only_config();
  cfg.cache.persist_dir = dir.str();
  SpmvServer srv(cfg);

  const CsrMatrix a = small_matrix(6);
  const auto fp = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a})).fp;
  srv.cache().evict_all();

  RunRequest run;
  run.fp = fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  expect_ulp_match(a, run.x, rep.y);
  EXPECT_EQ(srv.stats().cache.persist_hits, 1u);
}

// ------------------------------------------------------- socket transport

class SocketFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = (fs::temp_directory_path() /
                    ("spmvoptd_test_" + std::to_string(::getpid()) + ".sock"))
                       .string();
    ServerConfig cfg = memory_only_config();
    configure(cfg);
    core_ = std::make_unique<SpmvServer>(cfg);
    sock_ = std::make_unique<SocketServer>(*core_, socket_path_);
    auto started = sock_->start();
    ASSERT_TRUE(started.ok()) << started.error().to_string();
  }
  void TearDown() override {
    if (sock_) sock_->stop();
  }
  virtual void configure(ServerConfig&) {}

  Client connect() {
    auto c = Client::connect(socket_path_);
    if (!c.ok()) {
      // Cannot ASSERT from a non-void helper; a missing server makes every
      // downstream expectation meaningless, so fail hard.
      ADD_FAILURE() << c.error().to_string();
      std::abort();
    }
    return std::move(c.value());
  }

  std::string socket_path_;
  std::unique_ptr<SpmvServer> core_;
  std::unique_ptr<SocketServer> sock_;
};

TEST_F(SocketFixture, FullSessionOverTheSocket) {
  Client c = connect();
  ASSERT_TRUE(c.ping().ok());

  const CsrMatrix a = gen::stencil_2d_5pt(20, 20);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  EXPECT_EQ(sub.value().state, CacheState::Miss);

  const auto x = gen::test_vector(a.ncols());
  auto y = c.run(sub.value().fp, x);
  ASSERT_TRUE(y.ok()) << y.error().to_string();
  expect_ulp_match(a, x, y.value());

  auto sub2 = c.submit(a);
  ASSERT_TRUE(sub2.ok());
  EXPECT_EQ(sub2.value().state, CacheState::Hot);

  auto stats = c.stats_json();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("spmvopt-server-stats/v2"), std::string::npos);

  ASSERT_TRUE(c.shutdown_server().ok());
  sock_->wait();  // returns because the shutdown request stopped the loop
}

TEST_F(SocketFixture, ServerSideErrorsComeBackTyped) {
  Client c = connect();
  RunRequest run;
  run.fp = fingerprint_of(small_matrix());
  auto y = c.run(run.fp, std::vector<value_t>(200, 1.0));
  ASSERT_FALSE(y.ok());
  EXPECT_EQ(y.error().category(), ErrorCategory::Format);
  // The error did not tear down the session.
  EXPECT_TRUE(c.ping().ok());
}

TEST_F(SocketFixture, ConcurrentClientsGetCorrectAnswers) {
  constexpr int kClients = 4;
  constexpr int kRuns = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([this, t, &failures] {
      auto c = Client::connect(socket_path_);
      if (!c.ok()) {
        ++failures;
        return;
      }
      // Half the clients share a matrix (hot-path contention), half bring
      // their own (eviction-free coexistence).
      const CsrMatrix a = small_matrix(t % 2 == 0 ? 42 : 1000 + t);
      auto sub = c.value().submit(a);
      if (!sub.ok()) {
        ++failures;
        return;
      }
      const auto x = gen::test_vector(a.ncols(), 7 + t);
      for (int r = 0; r < kRuns; ++r) {
        auto y = c.value().run(sub.value().fp, x);
        if (!y.ok() || !verify::check_spmv(a, x, y.value()).pass()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(core_->stats().runs, static_cast<std::uint64_t>(kClients * kRuns));
}

class RejectingSocketFixture : public SocketFixture {
 protected:
  void configure(ServerConfig& cfg) override {
    cfg.max_in_flight = 0;  // every job is refused at admission
  }
};

TEST_F(RejectingSocketFixture, OverloadedServerRejectsWithResource) {
  Client c = connect();
  auto sub = c.submit(small_matrix());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().category(), ErrorCategory::Resource);
  EXPECT_NE(sub.error().message().find("overloaded"), std::string::npos);
  EXPECT_GE(core_->stats().rejected_overload, 1u);
  // Rejection is per-job, not per-connection: the session stays usable (and
  // stays rejected, deterministically).
  auto again = c.submit(small_matrix());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().category(), ErrorCategory::Resource);
}

class SheddingSocketFixture : public SocketFixture {
 protected:
  void configure(ServerConfig& cfg) override {
    cfg.shed_in_flight = 0;  // every submit sheds to the baseline plan
  }
};

TEST_F(SheddingSocketFixture, OverloadedSubmitsShedToBaseline) {
  Client c = connect();
  auto sub = c.submit(small_matrix());
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  EXPECT_EQ(sub.value().plan, "baseline");
  EXPECT_GE(core_->stats().shed_submits, 1u);
}

// -------------------------------------------------------- fault injection

TEST(ServerFaults, FrameTruncationYieldsATypedFormatError) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  RunRequest run;
  run.fp = fingerprint_of(small_matrix());
  run.x = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE(write_frame(fds[0], encode_request(run)).ok());

  robust::fault_arm("server.frame_truncate");
  auto frame = read_frame(fds[1]);
  robust::fault_disarm_all();
  // The frame arrives (stream stays synchronized) but its payload was cut:
  // the decode stage must reject it as Format, not crash or mis-parse.
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();
  ASSERT_TRUE(frame.value().has_value());
  auto req = decode_request(*frame.value());
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.error().category(), ErrorCategory::Format);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ------------------------------------------- deadlines and cancellation

TEST(SpmvServer, ExpiredTokenStopsARunBeforeItStarts) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix();
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunRequest run;
  run.fp = sub.fp;
  run.x = gen::test_vector(a.ncols());
  const auto tok = robust::CancelToken::after_seconds(0.0);
  const auto err = expect_error(srv.handle(run, false, &tok),
                                ErrorCategory::DeadlineExceeded);
  EXPECT_FALSE(err.retryable);
  EXPECT_EQ(srv.stats().deadline_exceeded, 1u);
}

TEST(SpmvServer, CancelledTokenAbortsASolveWithProgressContext) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  SolveRequest sr;
  sr.fp = sub.fp;
  sr.method = SolveMethod::Cg;
  sr.b.assign(static_cast<std::size_t>(a.nrows()), 1.0);
  robust::CancelToken tok;
  tok.cancel();
  const auto err =
      expect_error(srv.handle(sr, false, &tok), ErrorCategory::Cancelled);
  EXPECT_NE(err.message.find("iteration"), std::string::npos) << err.message;
  EXPECT_EQ(srv.stats().cancelled, 1u);
}

TEST(SpmvServer, DeadlineTripsMidSolveWellBeforeTheFullRun) {
  // A CG solve that would grind through max_iterations (the tolerance is
  // unreachable) must instead surface DeadlineExceeded within the deadline
  // plus a few iteration quanta — not after the full iteration budget.
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = gen::stencil_2d_5pt(128, 128);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  SolveRequest sr;
  sr.fp = sub.fp;
  sr.method = SolveMethod::Cg;
  sr.max_iterations = 1'000'000;
  sr.rel_tolerance = 1e-300;
  sr.b.assign(static_cast<std::size_t>(a.nrows()), 1.0);

  const auto tok = robust::CancelToken::after_ms(20);
  const auto t0 = std::chrono::steady_clock::now();
  const Reply reply = srv.handle(sr, false, &tok);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto err = expect_error(reply, ErrorCategory::DeadlineExceeded);
  EXPECT_NE(err.message.find("iteration"), std::string::npos) << err.message;
  // One iteration on a 16k-unknown stencil is far under a second; an entire
  // uncancelled run would be tens of seconds.
  EXPECT_LT(elapsed, 5.0);
  EXPECT_EQ(srv.stats().deadline_exceeded, 1u);
}

TEST(SpmvServer, DeadlineTripsMidRunManyOnAMonsterRow) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = heavy_matrix();
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunManyRequest rm;
  rm.fp = sub.fp;
  rm.nrhs = 96;
  rm.X = heavy_rhs(a, rm.nrhs);
  const auto tok = robust::CancelToken::after_ms(10);
  const auto t0 = std::chrono::steady_clock::now();
  const Reply reply = srv.handle(rm, false, &tok);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto err = expect_error(reply, ErrorCategory::DeadlineExceeded);
  EXPECT_FALSE(err.retryable);
  // The 10 ms budget plus chunk-granularity slack; never the full sweep.
  EXPECT_LT(elapsed, 5.0);
}

TEST(SpmvServer, InProcessCancelRequestAnswersUnknown) {
  // cancel(request_id) is resolved by the transport layer; the core has no
  // queue, so a cancel that reaches handle() truthfully answers Unknown.
  SpmvServer srv(memory_only_config());
  const auto rep = expect_reply<CancelReply>(srv.handle(CancelRequest{42}));
  EXPECT_EQ(rep.outcome, CancelReply::Outcome::Unknown);
}

TEST(SpmvServer, StatsJsonCarriesTheSelfHealingCounters) {
  SpmvServer srv(memory_only_config());
  const auto& rep = expect_reply<StatsReply>(srv.handle(StatsRequest{}));
  EXPECT_NE(rep.json.find("\"deadline_exceeded\""), std::string::npos);
  EXPECT_NE(rep.json.find("\"cancelled\""), std::string::npos);
  EXPECT_NE(rep.json.find("\"expired_in_queue\""), std::string::npos);
  EXPECT_NE(rep.json.find("\"watchdog_fires\""), std::string::npos);
  EXPECT_NE(rep.json.find("\"recycles\""), std::string::npos);
}

TEST(SpmvServer, RecycleEngineRespawnsTheTeam) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix();
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  ASSERT_TRUE(srv.recycle_engine("test-initiated recycle"));
  EXPECT_EQ(srv.stats().engine_recycles, 1u);
  EXPECT_EQ(srv.stats().engine_recycle_failures, 0u);
  EXPECT_FALSE(srv.health().entries().empty());

  // The recycled team still computes correct answers.
  RunRequest run;
  run.fp = sub.fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  expect_ulp_match(a, run.x, rep.y);
}

TEST(SpmvServer, PlanCacheFlushRewritesResidentEntries) {
  TempDir dir("flush");
  ServerConfig cfg = memory_only_config();
  cfg.cache.persist_dir = dir.str();
  SpmvServer srv(cfg);
  (void)expect_reply<SubmitReply>(srv.handle(SubmitRequest{small_matrix(21)}));
  (void)expect_reply<SubmitReply>(srv.handle(SubmitRequest{small_matrix(22)}));

  // Wipe the persistent tier behind the server's back; flush must restore
  // every resident entry (the drain path relies on this).
  for (const auto& e : fs::directory_iterator(dir.path()))
    fs::remove_all(e.path());
  ASSERT_TRUE(fs::is_empty(dir.path()));
  EXPECT_EQ(srv.cache().flush(), 2u);
  EXPECT_FALSE(fs::is_empty(dir.path()));
}

// ------------------------------------------------- retrying client policy

TEST(ClientRetry, BackoffScheduleIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_delay_ms = 10.0;
  policy.max_delay_ms = 100.0;
  policy.seed = 1234;

  const auto a = backoff_schedule_ms(policy, 77, policy.max_attempts);
  const auto b = backoff_schedule_ms(policy, 77, policy.max_attempts);
  ASSERT_EQ(a.size(), 5u);  // attempts - 1 sleeps
  EXPECT_EQ(a, b);  // pure function of (seed, request_id)

  double prev = policy.base_delay_ms;
  for (const double d : a) {
    EXPECT_GE(d, policy.base_delay_ms * 0.0);  // non-negative
    EXPECT_LE(d, policy.max_delay_ms);
    EXPECT_LE(d, std::max(policy.base_delay_ms, prev * 3.0));
    prev = d;
  }

  // Different request ids decorrelate: the streams differ somewhere.
  const auto other = backoff_schedule_ms(policy, 78, policy.max_attempts);
  EXPECT_NE(a, other);
}

// ------------------------------------------------------- socket transport

TEST(ServerFaults, EvictionDuringARunningJobIsSafe) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix(9);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunRequest run;
  run.fp = sub.fp;
  run.x = gen::test_vector(a.ncols());
  robust::fault_arm("server.evict_during_run");
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  robust::fault_disarm_all();
  // The whole cache was evicted mid-job; the in-flight entry must have
  // stayed alive (shared ownership) and produced the right answer.
  expect_ulp_match(a, run.x, rep.y);
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.cache.entries, 0u);
  EXPECT_GE(st.cache.evictions, 1u);
}

// -------------------------------------- deadlines/cancel over the socket

/// Connect a raw fd to the server socket, bypassing Client, so a test can
/// pipeline several frames without waiting for replies.
int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(SocketFixture, MonsterRowDeadlineDoesNotStarveSmallRequests) {
  // The acceptance scenario (ISSUE 8): a monster-row request with a 10 ms
  // deadline must come back as a typed DeadlineExceeded in bounded time,
  // while concurrent small requests on another connection complete with
  // oracle-checked answers — the deadline frees the executor instead of
  // letting one tenant monopolize it.
  Client heavy = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = heavy.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();

  std::atomic<bool> heavy_done{false};
  Error heavy_err(ErrorCategory::Internal, "run_many unexpectedly succeeded");
  double heavy_seconds = 0.0;
  std::thread monster([&] {
    CallOptions opts;
    opts.request_id = 101;
    opts.deadline_ms = 10;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = heavy.run_many(bigsub.value().fp, heavy_rhs(big, 96), 96, opts);
    heavy_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!r.ok()) heavy_err = std::move(r).error();
    heavy_done.store(true);
  });

  // Meanwhile: a small tenant keeps getting correct answers.
  Client small = connect();
  const CsrMatrix a = small_matrix(33);
  auto sub = small.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  const auto x = gen::test_vector(a.ncols());
  for (int r = 0; r < 6; ++r) {
    auto y = small.run(sub.value().fp, x);
    ASSERT_TRUE(y.ok()) << y.error().to_string();
    expect_ulp_match(a, x, y.value());
  }

  monster.join();
  ASSERT_TRUE(heavy_done.load());
  EXPECT_EQ(heavy_err.category(), ErrorCategory::DeadlineExceeded)
      << heavy_err.to_string();
  // Deadline + chunk-quantum slack, never the full multi-vector sweep.
  EXPECT_LT(heavy_seconds, 5.0);
  EXPECT_GE(core_->stats().deadline_exceeded, 1u);
}

TEST_F(SocketFixture, DeadlinePassedInQueueNeverExecutes) {
  // Two frames pipelined on one connection: a heavy no-deadline job followed
  // by a 1 ms-deadline job.  The second expires while queued behind the
  // first and must answer DeadlineExceeded without ever running.
  Client c = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = c.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();
  const CsrMatrix a = small_matrix(44);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();

  const int fd = raw_connect(socket_path_);
  ASSERT_GE(fd, 0);
  RunManyRequest rm;
  rm.fp = bigsub.value().fp;
  rm.nrhs = 96;
  rm.X = heavy_rhs(big, rm.nrhs);
  RunRequest run;
  run.fp = sub.value().fp;
  run.x = gen::test_vector(a.ncols());
  ASSERT_TRUE(
      write_frame(fd, encode_request(Request(std::move(rm)),
                                     RequestHeader{1, 0}))
          .ok());
  ASSERT_TRUE(
      write_frame(fd, encode_request(Request(std::move(run)),
                                     RequestHeader{2, 1}))
          .ok());

  auto frame1 = read_frame(fd);
  ASSERT_TRUE(frame1.ok() && frame1.value().has_value());
  auto rep1 = decode_reply(*frame1.value());
  ASSERT_TRUE(rep1.ok());
  EXPECT_EQ(rep1.value().request_id, 1u);
  EXPECT_TRUE(std::holds_alternative<RunManyReply>(rep1.value().reply));

  auto frame2 = read_frame(fd);
  ASSERT_TRUE(frame2.ok() && frame2.value().has_value());
  auto rep2 = decode_reply(*frame2.value());
  ASSERT_TRUE(rep2.ok());
  EXPECT_EQ(rep2.value().request_id, 2u);
  expect_error(rep2.value().reply, ErrorCategory::DeadlineExceeded);
  EXPECT_GE(core_->stats().expired_in_queue, 1u);
  ::close(fd);
}

TEST_F(SocketFixture, CancelVerbTargetsTheNamedRequest) {
  Client a = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = a.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();

  Client b = connect();
  // Unknown and unnamed ids answer Unknown, never an error.
  auto miss = b.cancel(999);
  ASSERT_TRUE(miss.ok()) << miss.error().to_string();
  EXPECT_EQ(miss.value(), CancelReply::Outcome::Unknown);
  auto zero = b.cancel(0);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value(), CancelReply::Outcome::Unknown);

  std::atomic<bool> done{false};
  bool run_ok = false;
  Error run_err(ErrorCategory::Internal, "unset");
  std::thread monster([&] {
    CallOptions opts;
    opts.request_id = 55;
    auto r = a.run_many(bigsub.value().fp, heavy_rhs(big, 96), 96, opts);
    run_ok = r.ok();
    if (!r.ok()) run_err = std::move(r).error();
    done.store(true);
  });

  // Race the target: cancel(55) until it lands (Queued or Running) or the
  // job wins the race and finishes.
  bool landed = false;
  while (!done.load()) {
    auto out = b.cancel(55);
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    if (out.value() != CancelReply::Outcome::Unknown) {
      landed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monster.join();

  if (run_ok) {
    // The job completed before the cancel could land: legal, but the verb
    // must then have answered Unknown throughout.
    EXPECT_FALSE(landed);
  } else {
    EXPECT_EQ(run_err.category(), ErrorCategory::Cancelled)
        << run_err.to_string();
    EXPECT_GE(core_->stats().cancelled, 1u);
  }
  // Cancellation is idempotent: re-cancelling a finished id is Unknown.
  auto after = b.cancel(55);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), CancelReply::Outcome::Unknown);
}

class WatchdogSocketFixture : public SocketFixture {
 protected:
  void configure(ServerConfig& cfg) override {
    cfg.watchdog_poll_ms = 5;  // sweep fast enough to catch a ~30 ms job
  }
};

TEST_F(WatchdogSocketFixture, WatchdogFireCancelsAndRecyclesTheTeam) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  Client c = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = c.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();

  // Arm AFTER the submit so the fire lands on the run_many below, then let
  // the watchdog declare it overdue on its next sweep.
  robust::fault_arm("server.watchdog_fire");
  CallOptions opts;
  opts.request_id = 9;
  auto r = c.run_many(bigsub.value().fp, heavy_rhs(big, 96), 96, opts);
  robust::fault_disarm_all();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Cancelled)
      << r.error().to_string();

  // The team recycle happens after the reply is flushed; give it a moment.
  ServerStats st;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    st = core_->stats();
    if (st.watchdog_fires >= 1 && st.engine_recycles >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  } while (std::chrono::steady_clock::now() < give_up);
  EXPECT_GE(st.watchdog_fires, 1u);
  EXPECT_GE(st.engine_recycles, 1u);
  EXPECT_FALSE(core_->health().entries().empty());

  // Self-healing means the recycled team still computes correct answers.
  const CsrMatrix a = small_matrix(66);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  const auto x = gen::test_vector(a.ncols());
  auto y = c.run(sub.value().fp, x);
  ASSERT_TRUE(y.ok()) << y.error().to_string();
  expect_ulp_match(a, x, y.value());
}

// ----------------------------------------------------------- drain paths

TEST_F(SocketFixture, DrainWithIdleServerStopsAndRefusesNewConnections) {
  Client c = connect();
  ASSERT_TRUE(c.ping().ok());
  sock_->drain(0.5);
  EXPECT_FALSE(Client::connect(socket_path_).ok());
}

TEST_F(SocketFixture, DrainCancelsWorkThatOutlivesTheGrace) {
  Client c = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = c.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();

  std::atomic<bool> done{false};
  bool run_ok = false;
  Error run_err(ErrorCategory::Internal, "unset");
  std::thread monster([&] {
    // Unnamed on purpose: the drain-time rejection is retryable, and a
    // retrying client would spin against a dying server.
    auto r = c.run_many(bigsub.value().fp, heavy_rhs(big, 96), 96);
    run_ok = r.ok();
    if (!r.ok()) run_err = std::move(r).error();
    done.store(true);
  });
  // Let the frame reach the server, then drain with zero grace: whatever is
  // in flight gets its token cancelled and flushed as a typed reply.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sock_->drain(0.0);
  monster.join();

  if (!run_ok) {
    // Cancelled mid-run, rejected at admission while draining, or the
    // connection died with the server — all legal ends; a hang is not.
    EXPECT_TRUE(run_err.category() == ErrorCategory::Cancelled ||
                run_err.category() == ErrorCategory::Resource ||
                run_err.category() == ErrorCategory::Io)
        << run_err.to_string();
  }
  EXPECT_FALSE(Client::connect(socket_path_).ok());
}

// ------------------------------------------------- client retry over socket

TEST_F(RejectingSocketFixture, NamedRequestsRetryUntilTheBudgetExhausts) {
  Client c = connect();
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 2.0;
  c.set_retry_policy(policy);

  CallOptions opts;
  opts.request_id = 5;
  auto sub = c.submit(small_matrix(), opts);
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().category(), ErrorCategory::Resource);
  EXPECT_NE(sub.error().to_string().find("after 3 attempts"),
            std::string::npos)
      << sub.error().to_string();
  EXPECT_GE(core_->stats().rejected_overload, 3u);

  // Unnamed requests make exactly one attempt: no idempotency token, no
  // retry-safety claim.
  const std::uint64_t before = core_->stats().rejected_overload;
  EXPECT_FALSE(c.submit(small_matrix()).ok());
  EXPECT_EQ(core_->stats().rejected_overload, before + 1);
}

TEST_F(RejectingSocketFixture, RetryExhaustFaultShortCircuitsTheSchedule) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  Client c = connect();
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 1.0;
  policy.max_delay_ms = 2.0;
  c.set_retry_policy(policy);

  robust::fault_arm("client.retry_exhaust");
  CallOptions opts;
  opts.request_id = 6;
  auto sub = c.submit(small_matrix(), opts);
  robust::fault_disarm_all();
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().category(), ErrorCategory::Resource);
  // The fault cut the loop after the first attempt: one server-side
  // rejection, not four.
  EXPECT_EQ(core_->stats().rejected_overload, 1u);
}

// ------------------------------------------- multi-executor mode (M > 1)

/// executors=4 on a shared work-stealing pool (DESIGN.md §12): requests
/// from different connections execute CONCURRENTLY instead of serializing
/// behind one executor's mailbox engine.
class MultiExecSocketFixture : public SocketFixture {
 protected:
  void configure(ServerConfig& cfg) override {
    cfg.executors = 4;
    cfg.engine_threads = 2;
    cfg.watchdog_poll_ms = 5;
  }
};

TEST_F(MultiExecSocketFixture, SmallTenantCompletesWhileMonsterStillRuns) {
  // Stronger than the single-executor no-starvation test: there the small
  // tenant waits for the monster's DEADLINE to free the executor; here it
  // must complete while the monster is STILL RUNNING — a second executor
  // picks it up, and peak_concurrent proves the overlap.
  Client heavy = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = heavy.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();

  std::atomic<bool> heavy_done{false};
  std::thread monster([&] {
    CallOptions opts;
    opts.request_id = 77;  // named so the test can cancel it when done
    (void)heavy.run_many(bigsub.value().fp, heavy_rhs(big, 96), 96, opts);
    heavy_done.store(true);
  });

  // Keep the small tenant running until its requests demonstrably overlap
  // the monster's EXECUTION (peak_concurrent >= 2).  Wall-clock overlap
  // alone proves nothing: the monster's 38 MB payload spends a while on the
  // wire before its handle() ever starts.
  Client small = connect();
  const CsrMatrix a = small_matrix(33);
  auto sub = small.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  const auto x = gen::test_vector(a.ncols());
  bool overlapped = false;
  for (int r = 0; r < 5000 && !heavy_done.load() && !overlapped; ++r) {
    auto y = small.run(sub.value().fp, x);
    ASSERT_TRUE(y.ok()) << y.error().to_string();
    expect_ulp_match(a, x, y.value());
    overlapped = core_->stats().peak_concurrent >= 2;
  }
  // Don't sit through the rest of the 96-vector sweep: cancel it.
  while (!heavy_done.load()) {
    auto out = small.cancel(77);
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monster.join();

  EXPECT_TRUE(overlapped)
      << "small requests serialized behind the monster despite M=4";
  const ServerStats st = core_->stats();
  EXPECT_EQ(st.executors, 4);
  EXPECT_GE(st.peak_concurrent, 2u);
}

TEST_F(MultiExecSocketFixture, StatsJsonCarriesExecutorAndPoolCounters) {
  Client c = connect();
  const CsrMatrix a = small_matrix(5);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  const auto x = gen::test_vector(a.ncols());
  ASSERT_TRUE(c.run(sub.value().fp, x).ok());

  auto stats = c.stats_json();
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  const std::string& json = stats.value();
  // Schema stays v2: the pool object is additive, and it is ALWAYS present
  // (zeroed in mailbox mode) so dashboards never branch on its existence.
  EXPECT_NE(json.find("\"schema\": \"spmvopt-server-stats/v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"executors\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"peak_concurrent\""), std::string::npos);
  EXPECT_NE(json.find("\"pool\""), std::string::npos);
  for (const char* key : {"\"workers\"", "\"tasks\"", "\"steals\"",
                          "\"parks\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  const ServerStats st = core_->stats();
  EXPECT_GT(st.pool_workers, 0);
  EXPECT_GT(st.pool_tasks, 0u);  // the run above dispatched through the pool
}

TEST_F(MultiExecSocketFixture, CancelVerbLandsAcrossExecutors) {
  Client a = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = a.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();

  Client b = connect();
  std::atomic<bool> done{false};
  bool run_ok = false;
  Error run_err(ErrorCategory::Internal, "unset");
  std::thread monster([&] {
    CallOptions opts;
    opts.request_id = 55;
    auto r = a.run_many(bigsub.value().fp, heavy_rhs(big, 96), 96, opts);
    run_ok = r.ok();
    if (!r.ok()) run_err = std::move(r).error();
    done.store(true);
  });

  // With M=4 the canceller's own requests run on a DIFFERENT executor than
  // the target: the registry sweep must find the id in a peer's slot.
  bool landed = false;
  while (!done.load()) {
    auto out = b.cancel(55);
    ASSERT_TRUE(out.ok()) << out.error().to_string();
    if (out.value() != CancelReply::Outcome::Unknown) {
      landed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monster.join();
  if (run_ok) {
    EXPECT_FALSE(landed);
  } else {
    EXPECT_EQ(run_err.category(), ErrorCategory::Cancelled)
        << run_err.to_string();
  }
}

TEST_F(MultiExecSocketFixture, WatchdogQuiescesPeersBeforeRecycling) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  Client c = connect();
  const CsrMatrix big = heavy_matrix();
  auto bigsub = c.submit(big);
  ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();

  // A peer tenant stays live through the whole fire-and-recycle episode:
  // the recycle gate must drain it, recycle, and let it resume — never
  // recycle the pool under its feet, never deadlock against it.
  std::atomic<bool> stop_peer{false};
  std::atomic<int> peer_failures{0};
  std::thread peer([&] {
    auto pc = Client::connect(socket_path_);
    if (!pc.ok()) {
      ++peer_failures;
      return;
    }
    const CsrMatrix a = small_matrix(88);
    auto sub = pc.value().submit(a);
    if (!sub.ok()) {
      ++peer_failures;
      return;
    }
    const auto x = gen::test_vector(a.ncols());
    while (!stop_peer.load()) {
      auto y = pc.value().run(sub.value().fp, x);
      if (!y.ok()) {
        // The one-shot fault sweeps whichever entries are active at poll
        // time, so the peer's own run can absorb the fire and be cancelled
        // — a legitimate watchdog outcome.  Anything else is a failure.
        if (y.error().category() != ErrorCategory::Cancelled) ++peer_failures;
      } else if (!verify::check_spmv(a, x, y.value()).pass()) {
        ++peer_failures;
      }
    }
  });

  // Because the fire is one-shot and the peer may absorb it (above), re-arm
  // and rerun until the monster is the one the watchdog cancels.
  const std::vector<value_t> rhs = heavy_rhs(big, 96);
  bool monster_tripped = false;
  for (int attempt = 0; attempt < 10 && !monster_tripped; ++attempt) {
    robust::fault_arm("server.watchdog_fire");
    CallOptions opts;
    opts.request_id = 9;
    auto r = c.run_many(bigsub.value().fp, rhs, 96, opts);
    if (!r.ok()) {
      EXPECT_EQ(r.error().category(), ErrorCategory::Cancelled)
          << r.error().to_string();
      monster_tripped = true;
    }
  }
  robust::fault_disarm_all();

  ServerStats st;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  do {
    st = core_->stats();
    if (st.watchdog_fires >= 1 && st.engine_recycles >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  } while (std::chrono::steady_clock::now() < give_up);
  stop_peer.store(true);
  peer.join();

  EXPECT_TRUE(monster_tripped);
  EXPECT_GE(st.watchdog_fires, 1u);
  EXPECT_GE(st.engine_recycles, 1u);
  EXPECT_EQ(peer_failures.load(), 0);

  // Post-recycle correctness on a fresh pool.
  const CsrMatrix a = small_matrix(66);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  const auto x = gen::test_vector(a.ncols());
  auto y = c.run(sub.value().fp, x);
  ASSERT_TRUE(y.ok()) << y.error().to_string();
  expect_ulp_match(a, x, y.value());
}

TEST_F(MultiExecSocketFixture, DrainCancelsEveryInFlightExecutor) {
  const CsrMatrix big = heavy_matrix();
  Fingerprint fp;
  {
    Client c = connect();
    auto bigsub = c.submit(big);
    ASSERT_TRUE(bigsub.ok()) << bigsub.error().to_string();
    fp = bigsub.value().fp;
  }
  constexpr int kHeavy = 3;
  std::atomic<int> resolved{0};
  std::vector<std::thread> monsters;
  for (int i = 0; i < kHeavy; ++i) {
    monsters.emplace_back([&] {
      auto c = Client::connect(socket_path_);
      if (!c.ok()) {
        ++resolved;  // server already draining: also a legal resolution
        return;
      }
      // Unnamed on purpose (retryable rejection; see the M=1 drain test).
      auto r = c.value().run_many(fp, heavy_rhs(big, 96), 96);
      if (!r.ok()) {
        const ErrorCategory cat = r.error().category();
        EXPECT_TRUE(cat == ErrorCategory::Cancelled ||
                    cat == ErrorCategory::Resource ||
                    cat == ErrorCategory::Io)
            << r.error().to_string();
      }
      ++resolved;
    });
  }
  // Let the frames land on distinct executors, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sock_->drain(0.0);
  for (auto& t : monsters) t.join();
  EXPECT_EQ(resolved.load(), kHeavy);  // a hang, not an error, is the bug
  EXPECT_FALSE(Client::connect(socket_path_).ok());
}

TEST_F(MultiExecSocketFixture, DrainRacingWaitThenStopShutsDownOnce) {
  // The daemon's exact shutdown arrangement: a signal thread calls
  // drain() (which ends in stop()) while the main thread sits in wait()
  // and calls stop() itself the moment stopping_ wakes it.  Both threads
  // reach stop()'s join phase; before it was serialized this deadlocked
  // deterministically at executors > 1 (two join()s of one std::thread).
  Client c = connect();
  const CsrMatrix a = small_matrix(33);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  auto y = c.run(sub.value().fp, gen::test_vector(a.ncols()));
  ASSERT_TRUE(y.ok()) << y.error().to_string();

  std::thread signal_thread([this] { sock_->drain(0.05); });
  sock_->wait();
  sock_->stop();
  signal_thread.join();  // a deadlock here trips the ctest timeout
  EXPECT_FALSE(Client::connect(socket_path_).ok());
}

}  // namespace
}  // namespace spmvopt::server
