// End-to-end tests for the spmvoptd server subsystem (DESIGN.md §9):
// protocol codec round-trips and truncation, the plan cache's amortization
// ladder (hot / warm / persist / miss), eviction under a byte budget,
// overload shedding and rejection, the socket transport with concurrent
// clients (the TSan shard exercises this), and the server fault points.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "gen/generators.hpp"
#include "robust/fault_inject.hpp"
#include "server/client.hpp"
#include "server/plan_cache.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/fingerprint.hpp"
#include "verify/oracle.hpp"

#include <sys/socket.h>
#include <unistd.h>

namespace spmvopt::server {
namespace {

namespace fs = std::filesystem;

CsrMatrix small_matrix(std::uint64_t seed = 7) {
  return gen::random_uniform(200, 6, seed);
}

/// A unique, auto-cleaned directory under the system temp dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("spmvopt_server_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

void expect_ulp_match(const CsrMatrix& A, std::span<const value_t> x,
                      std::span<const value_t> y) {
  const auto report = verify::check_spmv(A, x, y);
  EXPECT_TRUE(report.pass()) << report.to_string();
}

template <class R>
R expect_reply(const Reply& reply) {
  const R* r = std::get_if<R>(&reply);
  if (r == nullptr) {
    const auto* err = std::get_if<ErrorReply>(&reply);
    ADD_FAILURE() << "unexpected reply type"
                  << (err ? ": " + err->message : std::string());
    return R{};
  }
  return *r;
}

ErrorReply expect_error(const Reply& reply, ErrorCategory category) {
  const auto* err = std::get_if<ErrorReply>(&reply);
  if (err == nullptr) {
    ADD_FAILURE() << "expected an ErrorReply";
    return ErrorReply{};
  }
  EXPECT_EQ(static_cast<int>(err->category), static_cast<int>(category))
      << error_category_name(err->category) << ": " << err->message;
  return *err;
}

// ------------------------------------------------------------------- codec

TEST(Protocol, RequestsRoundTrip) {
  const CsrMatrix a = small_matrix();
  const Fingerprint fp = fingerprint_of(a);

  {
    auto r = decode_request(encode_request(SubmitRequest{a}));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<SubmitRequest>(r.value());
    EXPECT_TRUE(req.matrix.equals(a));
  }
  {
    RunRequest in;
    in.fp = fp;
    in.x = {1.0, -2.5, 3.25};
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<RunRequest>(r.value());
    EXPECT_EQ(req.fp, fp);
    EXPECT_EQ(req.x, in.x);
  }
  {
    RunManyRequest in;
    in.fp = fp;
    in.nrhs = 2;
    in.X = {1.0, 2.0, 3.0, 4.0};
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<RunManyRequest>(r.value());
    EXPECT_EQ(req.nrhs, 2);
    EXPECT_EQ(req.X, in.X);
  }
  {
    SolveRequest in;
    in.fp = fp;
    in.method = SolveMethod::Bicgstab;
    in.max_iterations = 321;
    in.rel_tolerance = 1e-6;
    in.b = {0.5, 0.25};
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& req = std::get<SolveRequest>(r.value());
    EXPECT_EQ(req.method, SolveMethod::Bicgstab);
    EXPECT_EQ(req.max_iterations, 321);
    EXPECT_DOUBLE_EQ(req.rel_tolerance, 1e-6);
    EXPECT_EQ(req.b, in.b);
  }
  for (const Request& in :
       {Request(StatsRequest{}), Request(PingRequest{}),
        Request(ShutdownRequest{})}) {
    auto r = decode_request(encode_request(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(r.value().index(), in.index());
  }
}

TEST(Protocol, RepliesRoundTrip) {
  {
    SubmitReply in;
    in.fp = fingerprint_of(small_matrix());
    in.state = CacheState::Warm;
    in.plan = "pf+unroll-vec";
    in.pre_seconds = 0.125;
    auto r = decode_reply(encode_reply(in));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    const auto& rep = std::get<SubmitReply>(r.value());
    EXPECT_EQ(rep.fp, in.fp);
    EXPECT_EQ(rep.state, CacheState::Warm);
    EXPECT_EQ(rep.plan, in.plan);
    EXPECT_DOUBLE_EQ(rep.pre_seconds, 0.125);
  }
  {
    auto r = decode_reply(encode_reply(RunReply{{1.0, 2.0, -3.0}}));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(std::get<RunReply>(r.value()).y,
              (std::vector<value_t>{1.0, 2.0, -3.0}));
  }
  {
    SolveReply in;
    in.converged = true;
    in.iterations = 17;
    in.residual = 1e-9;
    in.x = {4.0, 5.0};
    auto r = decode_reply(encode_reply(in));
    ASSERT_TRUE(r.ok());
    const auto& rep = std::get<SolveReply>(r.value());
    EXPECT_TRUE(rep.converged);
    EXPECT_EQ(rep.iterations, 17);
    EXPECT_EQ(rep.x, in.x);
  }
  {
    auto r = decode_reply(encode_reply(
        ErrorReply{ErrorCategory::Resource, "too big"}));
    ASSERT_TRUE(r.ok());
    const auto& rep = std::get<ErrorReply>(r.value());
    EXPECT_EQ(rep.category, ErrorCategory::Resource);
    EXPECT_EQ(rep.message, "too big");
  }
  {
    auto r = decode_reply(encode_reply(PongReply{}));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(std::get<PongReply>(r.value()).protocol_version,
              kProtocolVersion);
  }
}

TEST(Protocol, TruncatedPayloadIsARejectedDecode) {
  RunRequest in;
  in.fp = fingerprint_of(small_matrix());
  in.x = {1.0, 2.0, 3.0, 4.0};
  const std::string full = encode_request(in);
  ASSERT_TRUE(decode_request(full).ok());
  // Every strict prefix must be rejected, never crash or mis-parse.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto r = decode_request(full.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

TEST(Protocol, TrailingGarbageIsAFormatError) {
  const std::string payload = encode_request(PingRequest{}) + "xx";
  auto r = decode_request(payload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
}

TEST(Protocol, UnknownTypeByteIsAFormatError) {
  std::string payload(1, static_cast<char>(0x33));
  auto r = decode_request(payload);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
  EXPECT_FALSE(decode_reply(payload).ok());
}

TEST(Protocol, PeekTypeReadsTheLeadingByte) {
  EXPECT_EQ(peek_type(encode_request(PingRequest{})), MsgType::Ping);
  EXPECT_EQ(peek_type(encode_reply(PongReply{})), MsgType::Pong);
  EXPECT_EQ(peek_type(""), std::nullopt);
}

TEST(Protocol, FramesTraverseASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = encode_request(PingRequest{});
  ASSERT_TRUE(write_frame(fds[0], payload).ok());
  auto got = read_frame(fds[1]);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  ASSERT_TRUE(got.value().has_value());
  EXPECT_EQ(*got.value(), payload);
  // Closing the writer yields a clean EOF (nullopt), not an error.
  ::close(fds[0]);
  auto eof = read_frame(fds[1]);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value().has_value());
  ::close(fds[1]);
}

// ---------------------------------------------------- in-process SpmvServer

ServerConfig memory_only_config() {
  ServerConfig cfg;
  cfg.engine_threads = 2;
  return cfg;
}

TEST(SpmvServer, SubmitMissThenHotSkipsThePipeline) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix();

  const auto first =
      expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(first.state, CacheState::Miss);
  EXPECT_EQ(first.fp, fingerprint_of(a));
  EXPECT_FALSE(first.plan.empty());

  const auto second =
      expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(second.state, CacheState::Hot);
  EXPECT_EQ(second.plan, first.plan);
  // The acceptance criterion: a warm job pays zero preprocessing — no
  // feature extraction, no classification, no conversion.
  EXPECT_EQ(second.pre_seconds, 0.0);

  const ServerStats st = srv.stats();
  EXPECT_EQ(st.cache.misses, 1u);
  EXPECT_GE(st.cache.hot_hits, 1u);
  EXPECT_EQ(st.submits, 2u);
  EXPECT_EQ(st.errors, 0u);
}

TEST(SpmvServer, SamePatternNewValuesIsAWarmHit) {
  SpmvServer srv(memory_only_config());
  CsrMatrix a = small_matrix();
  const auto first = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(first.state, CacheState::Miss);

  // Perturb the values only: the structure fingerprint is unchanged, so the
  // plan is reused (no re-classification) but conversion re-runs.
  for (index_t k = 0; k < a.nnz(); ++k) a.values_mut()[k] *= 1.5;
  const auto second = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(second.state, CacheState::Warm);
  EXPECT_EQ(second.plan, first.plan);
  EXPECT_NE(second.fp, first.fp);
  EXPECT_TRUE(second.fp.same_structure(first.fp));
  EXPECT_EQ(srv.stats().cache.warm_hits, 1u);
}

TEST(SpmvServer, MergePlanMatrixHotAndWarmAndCorrect) {
  // An IMB monster-row matrix routes to the merge-path kernel; the plan must
  // survive the cache ladder (miss → hot → warm) and the engine-bound merge
  // execution must match the oracle.
  SpmvServer srv(memory_only_config());
  CsrMatrix a = gen::monster_row(512, 512, 1, 0, 7);

  const auto first = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(first.state, CacheState::Miss);
  EXPECT_NE(first.plan.find("merge"), std::string::npos) << first.plan;

  RunRequest run;
  run.fp = first.fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  ASSERT_EQ(static_cast<index_t>(rep.y.size()), a.nrows());
  expect_ulp_match(a, run.x, rep.y);

  const auto hot = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(hot.state, CacheState::Hot);
  EXPECT_EQ(hot.plan, first.plan);
  EXPECT_EQ(hot.pre_seconds, 0.0);

  // Same structure, new values: warm hit reuses the merge plan without
  // re-classifying.
  for (index_t k = 0; k < a.nnz(); ++k) a.values_mut()[k] *= 2.0;
  const auto warm = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  EXPECT_EQ(warm.state, CacheState::Warm);
  EXPECT_EQ(warm.plan, first.plan);
  RunRequest run2;
  run2.fp = warm.fp;
  run2.x = run.x;
  const auto& rep2 = expect_reply<RunReply>(srv.handle(run2));
  expect_ulp_match(a, run2.x, rep2.y);
}

TEST(SpmvServer, RunMatchesTheUlpOracle) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = gen::stencil_2d_5pt(24, 24);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunRequest run;
  run.fp = sub.fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  ASSERT_EQ(static_cast<index_t>(rep.y.size()), a.nrows());
  expect_ulp_match(a, run.x, rep.y);
}

TEST(SpmvServer, RunManyMatchesTheUlpOracle) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix(11);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunManyRequest rm;
  rm.fp = sub.fp;
  rm.nrhs = 3;
  const auto ncols = static_cast<std::size_t>(a.ncols());
  for (int r = 0; r < rm.nrhs; ++r) {
    const auto x = gen::test_vector(a.ncols(), 100 + r);
    rm.X.insert(rm.X.end(), x.begin(), x.end());
  }
  const auto& rep = expect_reply<RunManyReply>(srv.handle(rm));
  ASSERT_EQ(rep.nrhs, 3);
  const auto nrows = static_cast<std::size_t>(a.nrows());
  ASSERT_EQ(rep.Y.size(), 3 * nrows);
  for (int r = 0; r < 3; ++r)
    expect_ulp_match(
        a, std::span(rm.X).subspan(r * ncols, ncols),
        std::span(rep.Y).subspan(static_cast<std::size_t>(r) * nrows, nrows));
}

TEST(SpmvServer, CgSolveConvergesOnAStencil) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);  // SPD
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  SolveRequest sr;
  sr.fp = sub.fp;
  sr.method = SolveMethod::Cg;
  sr.b.assign(static_cast<std::size_t>(a.nrows()), 1.0);
  const auto& rep = expect_reply<SolveReply>(srv.handle(sr));
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(rep.iterations, 0);

  // Check the residual claim independently: ||b - A x|| / ||b|| small.
  std::vector<value_t> ax(static_cast<std::size_t>(a.nrows()));
  a.multiply(rep.x, ax);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    rr += (sr.b[i] - ax[i]) * (sr.b[i] - ax[i]);
    bb += sr.b[i] * sr.b[i];
  }
  EXPECT_LT(rr, 1e-12 * bb);
}

TEST(SpmvServer, UnknownFingerprintIsAFormatError) {
  SpmvServer srv(memory_only_config());
  RunRequest run;
  run.fp = fingerprint_of(small_matrix());
  run.x.assign(static_cast<std::size_t>(small_matrix().ncols()), 1.0);
  expect_error(srv.handle(run), ErrorCategory::Format);
  EXPECT_EQ(srv.stats().errors, 1u);
}

TEST(SpmvServer, MismatchedOperandSizesAreFormatErrors) {
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix();
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunRequest run;
  run.fp = sub.fp;
  run.x = {1.0};  // wrong length
  expect_error(srv.handle(run), ErrorCategory::Format);

  SolveRequest sr;
  sr.fp = sub.fp;
  sr.b = {1.0};
  expect_error(srv.handle(sr), ErrorCategory::Format);
}

TEST(SpmvServer, StatsReplyIsStructuredJson) {
  SpmvServer srv(memory_only_config());
  (void)srv.handle(SubmitRequest{small_matrix()});
  const auto& rep = expect_reply<StatsReply>(srv.handle(StatsRequest{}));
  EXPECT_NE(rep.json.find("\"schema\": \"spmvopt-server-stats/v1\""),
            std::string::npos);
  EXPECT_NE(rep.json.find("\"misses\": 1"), std::string::npos);
}

TEST(SpmvServer, ShutdownRequestSetsTheFlag) {
  SpmvServer srv(memory_only_config());
  EXPECT_FALSE(srv.shutdown_requested());
  (void)expect_reply<ShutdownReply>(srv.handle(ShutdownRequest{}));
  EXPECT_TRUE(srv.shutdown_requested());
}

// -------------------------------------------------- eviction and admission

TEST(SpmvServer, EvictionUnderATinyByteBudget) {
  const CsrMatrix a = small_matrix(1);
  const CsrMatrix b = small_matrix(2);

  ServerConfig cfg = memory_only_config();
  // Budget fits one matrix (CSR + optimized form), never two.
  cfg.cache.max_resident_bytes = 3 * a.format_bytes();
  SpmvServer srv(cfg);

  const auto sa = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));
  (void)expect_reply<SubmitReply>(srv.handle(SubmitRequest{b}));
  const ServerStats st = srv.stats();
  EXPECT_GE(st.cache.evictions, 1u);
  EXPECT_LE(st.cache.resident_bytes, cfg.cache.max_resident_bytes);

  // The evicted matrix is gone (memory-only tier): typed Format error.
  RunRequest run;
  run.fp = sa.fp;
  run.x.assign(static_cast<std::size_t>(a.ncols()), 1.0);
  expect_error(srv.handle(run), ErrorCategory::Format);
}

TEST(SpmvServer, MatrixOverTheBudgetIsAResourceError) {
  ServerConfig cfg = memory_only_config();
  cfg.cache.max_resident_bytes = 64;  // nothing real fits
  SpmvServer srv(cfg);
  expect_error(srv.handle(SubmitRequest{small_matrix()}),
               ErrorCategory::Resource);
}

TEST(SpmvServer, ShedSubmitRunsTheBaselinePlan) {
  SpmvServer srv(memory_only_config());
  const auto rep = expect_reply<SubmitReply>(
      srv.handle(SubmitRequest{small_matrix()}, /*shed=*/true));
  // The degradation ladder's middle rung: admitted, but with the
  // classification stage skipped — the always-valid baseline CSR plan.
  EXPECT_EQ(rep.plan, "baseline");
  EXPECT_EQ(srv.stats().shed_submits, 1u);
  EXPECT_EQ(srv.stats().cache.misses, 0u);  // classification never ran
}

// ------------------------------------------------------- persistent tier

TEST(SpmvServer, PersistentTierSurvivesARestart) {
  TempDir dir("persist");
  ServerConfig cfg = memory_only_config();
  cfg.cache.persist_dir = dir.str();

  const CsrMatrix a = small_matrix(5);
  Fingerprint fp;
  {
    SpmvServer first(cfg);
    fp = expect_reply<SubmitReply>(first.handle(SubmitRequest{a})).fp;
    EXPECT_EQ(first.stats().cache.misses, 1u);
  }

  // A fresh server (fresh memory tier) can run the fingerprint directly:
  // matrix and plan come back from disk, classification does not re-run.
  SpmvServer second(cfg);
  RunRequest run;
  run.fp = fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(second.handle(run));
  expect_ulp_match(a, run.x, rep.y);
  const ServerStats st = second.stats();
  EXPECT_EQ(st.cache.persist_hits, 1u);
  EXPECT_EQ(st.cache.misses, 0u);

  // And a re-submit after eviction lands on the warm plan file, not a miss.
  second.cache().evict_all();
  const auto resub = expect_reply<SubmitReply>(second.handle(SubmitRequest{a}));
  EXPECT_EQ(resub.state, CacheState::Warm);
}

TEST(SpmvServer, EvictedEntryReloadsFromDisk) {
  TempDir dir("reload");
  ServerConfig cfg = memory_only_config();
  cfg.cache.persist_dir = dir.str();
  SpmvServer srv(cfg);

  const CsrMatrix a = small_matrix(6);
  const auto fp = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a})).fp;
  srv.cache().evict_all();

  RunRequest run;
  run.fp = fp;
  run.x = gen::test_vector(a.ncols());
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  expect_ulp_match(a, run.x, rep.y);
  EXPECT_EQ(srv.stats().cache.persist_hits, 1u);
}

// ------------------------------------------------------- socket transport

class SocketFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = (fs::temp_directory_path() /
                    ("spmvoptd_test_" + std::to_string(::getpid()) + ".sock"))
                       .string();
    ServerConfig cfg = memory_only_config();
    configure(cfg);
    core_ = std::make_unique<SpmvServer>(cfg);
    sock_ = std::make_unique<SocketServer>(*core_, socket_path_);
    auto started = sock_->start();
    ASSERT_TRUE(started.ok()) << started.error().to_string();
  }
  void TearDown() override {
    if (sock_) sock_->stop();
  }
  virtual void configure(ServerConfig&) {}

  Client connect() {
    auto c = Client::connect(socket_path_);
    if (!c.ok()) {
      // Cannot ASSERT from a non-void helper; a missing server makes every
      // downstream expectation meaningless, so fail hard.
      ADD_FAILURE() << c.error().to_string();
      std::abort();
    }
    return std::move(c.value());
  }

  std::string socket_path_;
  std::unique_ptr<SpmvServer> core_;
  std::unique_ptr<SocketServer> sock_;
};

TEST_F(SocketFixture, FullSessionOverTheSocket) {
  Client c = connect();
  ASSERT_TRUE(c.ping().ok());

  const CsrMatrix a = gen::stencil_2d_5pt(20, 20);
  auto sub = c.submit(a);
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  EXPECT_EQ(sub.value().state, CacheState::Miss);

  const auto x = gen::test_vector(a.ncols());
  auto y = c.run(sub.value().fp, x);
  ASSERT_TRUE(y.ok()) << y.error().to_string();
  expect_ulp_match(a, x, y.value());

  auto sub2 = c.submit(a);
  ASSERT_TRUE(sub2.ok());
  EXPECT_EQ(sub2.value().state, CacheState::Hot);

  auto stats = c.stats_json();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("spmvopt-server-stats/v1"), std::string::npos);

  ASSERT_TRUE(c.shutdown_server().ok());
  sock_->wait();  // returns because the shutdown request stopped the loop
}

TEST_F(SocketFixture, ServerSideErrorsComeBackTyped) {
  Client c = connect();
  RunRequest run;
  run.fp = fingerprint_of(small_matrix());
  auto y = c.run(run.fp, std::vector<value_t>(200, 1.0));
  ASSERT_FALSE(y.ok());
  EXPECT_EQ(y.error().category(), ErrorCategory::Format);
  // The error did not tear down the session.
  EXPECT_TRUE(c.ping().ok());
}

TEST_F(SocketFixture, ConcurrentClientsGetCorrectAnswers) {
  constexpr int kClients = 4;
  constexpr int kRuns = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([this, t, &failures] {
      auto c = Client::connect(socket_path_);
      if (!c.ok()) {
        ++failures;
        return;
      }
      // Half the clients share a matrix (hot-path contention), half bring
      // their own (eviction-free coexistence).
      const CsrMatrix a = small_matrix(t % 2 == 0 ? 42 : 1000 + t);
      auto sub = c.value().submit(a);
      if (!sub.ok()) {
        ++failures;
        return;
      }
      const auto x = gen::test_vector(a.ncols(), 7 + t);
      for (int r = 0; r < kRuns; ++r) {
        auto y = c.value().run(sub.value().fp, x);
        if (!y.ok() || !verify::check_spmv(a, x, y.value()).pass()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(core_->stats().runs, static_cast<std::uint64_t>(kClients * kRuns));
}

class RejectingSocketFixture : public SocketFixture {
 protected:
  void configure(ServerConfig& cfg) override {
    cfg.max_in_flight = 0;  // every job is refused at admission
  }
};

TEST_F(RejectingSocketFixture, OverloadedServerRejectsWithResource) {
  Client c = connect();
  auto sub = c.submit(small_matrix());
  ASSERT_FALSE(sub.ok());
  EXPECT_EQ(sub.error().category(), ErrorCategory::Resource);
  EXPECT_NE(sub.error().message().find("overloaded"), std::string::npos);
  EXPECT_GE(core_->stats().rejected_overload, 1u);
  // Rejection is per-job, not per-connection: the session stays usable (and
  // stays rejected, deterministically).
  auto again = c.submit(small_matrix());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().category(), ErrorCategory::Resource);
}

class SheddingSocketFixture : public SocketFixture {
 protected:
  void configure(ServerConfig& cfg) override {
    cfg.shed_in_flight = 0;  // every submit sheds to the baseline plan
  }
};

TEST_F(SheddingSocketFixture, OverloadedSubmitsShedToBaseline) {
  Client c = connect();
  auto sub = c.submit(small_matrix());
  ASSERT_TRUE(sub.ok()) << sub.error().to_string();
  EXPECT_EQ(sub.value().plan, "baseline");
  EXPECT_GE(core_->stats().shed_submits, 1u);
}

// -------------------------------------------------------- fault injection

TEST(ServerFaults, FrameTruncationYieldsATypedFormatError) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  RunRequest run;
  run.fp = fingerprint_of(small_matrix());
  run.x = {1.0, 2.0, 3.0, 4.0};
  ASSERT_TRUE(write_frame(fds[0], encode_request(run)).ok());

  robust::fault_arm("server.frame_truncate");
  auto frame = read_frame(fds[1]);
  robust::fault_disarm_all();
  // The frame arrives (stream stays synchronized) but its payload was cut:
  // the decode stage must reject it as Format, not crash or mis-parse.
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();
  ASSERT_TRUE(frame.value().has_value());
  auto req = decode_request(*frame.value());
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.error().category(), ErrorCategory::Format);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServerFaults, EvictionDuringARunningJobIsSafe) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  SpmvServer srv(memory_only_config());
  const CsrMatrix a = small_matrix(9);
  const auto sub = expect_reply<SubmitReply>(srv.handle(SubmitRequest{a}));

  RunRequest run;
  run.fp = sub.fp;
  run.x = gen::test_vector(a.ncols());
  robust::fault_arm("server.evict_during_run");
  const auto& rep = expect_reply<RunReply>(srv.handle(run));
  robust::fault_disarm_all();
  // The whole cache was evicted mid-job; the in-flight entry must have
  // stayed alive (shared ownership) and produced the right answer.
  expect_ulp_match(a, run.x, rep.y);
  const ServerStats st = srv.stats();
  EXPECT_EQ(st.cache.entries, 0u);
  EXPECT_GE(st.cache.evictions, 1u);
}

}  // namespace
}  // namespace spmvopt::server
