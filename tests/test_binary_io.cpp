#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "gen/generators.hpp"
#include "kernels/spmv.hpp"
#include "sparse/binary_io.hpp"

namespace spmvopt {
namespace {

TEST(BinaryIo, RoundTripStream) {
  const CsrMatrix a = gen::power_law(500, 8, 2.0, 7);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(buf, a);
  const CsrMatrix b = read_csr_binary(buf);
  EXPECT_TRUE(a.equals(b));
}

TEST(BinaryIo, RoundTripFile) {
  const CsrMatrix a = gen::stencil_2d_5pt(20, 20);
  const std::string path =
      (std::filesystem::temp_directory_path() / "spmvopt_test.csrbin").string();
  write_csr_binary_file(path, a);
  const CsrMatrix b = read_csr_binary_file(path);
  EXPECT_TRUE(a.equals(b));
  std::remove(path.c_str());
}

TEST(BinaryIo, RoundTripEmptyMatrix) {
  CooMatrix coo(3, 3);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(buf, a);
  EXPECT_TRUE(read_csr_binary(buf).equals(a));
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "NOTACSRFILE-PADDING-PADDING";
  EXPECT_THROW((void)read_csr_binary(buf), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncation) {
  const CsrMatrix a = gen::diagonal(64);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(buf, a);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW((void)read_csr_binary(cut), std::runtime_error);
}

TEST(BinaryIo, RejectsCorruptedStructure) {
  const CsrMatrix a = gen::diagonal(8);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(buf, a);
  std::string bytes = buf.str();
  // Flip a colind byte to an out-of-range value (v2 colind block starts
  // after magic + version + dims + crc + rowptr).  The checksum catches the
  // corruption before CSR validation even runs.
  const std::size_t colind_off = 8 + 4 + 3 * 8 + 4 + 9 * 4;
  bytes[colind_off + 3] = 0x7F;  // high byte -> huge column index
  std::stringstream bad(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)read_csr_binary(bad), std::runtime_error);
}

TEST(BinaryIo, ReadsLegacyV1Images) {
  // A v1 image: magic "SPMVCSR1", i64 dims, raw arrays — no version, no
  // checksum.  Old caches on disk must keep loading.
  const CsrMatrix a = gen::diagonal(4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf.write("SPMVCSR1", 8);
  const std::int64_t dims[3] = {a.nrows(), a.ncols(), a.nnz()};
  buf.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  buf.write(reinterpret_cast<const char*>(a.rowptr()),
            static_cast<std::streamsize>((a.nrows() + 1) * sizeof(index_t)));
  buf.write(reinterpret_cast<const char*>(a.colind()),
            static_cast<std::streamsize>(a.nnz() * sizeof(index_t)));
  buf.write(reinterpret_cast<const char*>(a.values()),
            static_cast<std::streamsize>(a.nnz() * sizeof(value_t)));
  EXPECT_TRUE(read_csr_binary(buf).equals(a));
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW((void)read_csr_binary_file("/nonexistent/x.csrbin"),
               std::runtime_error);
}

TEST(Transpose, MatchesExplicitTranspose) {
  const CsrMatrix a = gen::power_law(300, 7, 2.0, 5);
  // Build A^T explicitly via COO.
  CooMatrix coo(a.ncols(), a.nrows());
  for (index_t i = 0; i < a.nrows(); ++i)
    for (index_t k = a.rowptr()[i]; k < a.rowptr()[i + 1]; ++k)
      coo.add(a.colind()[k], i, a.values()[k]);
  coo.compress();
  const CsrMatrix at = CsrMatrix::from_coo(coo);

  const std::vector<value_t> x = gen::test_vector(a.nrows());
  std::vector<value_t> expected(static_cast<std::size_t>(a.ncols()));
  at.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.ncols()));
  kernels::spmv_transpose(a, x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(Transpose, RectangularMatrix) {
  CooMatrix coo(2, 4);
  coo.add(0, 0, 1.0);
  coo.add(0, 3, 2.0);
  coo.add(1, 1, 3.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<value_t> x{10.0, 100.0};
  std::vector<value_t> y(4);
  kernels::spmv_transpose(a, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 10.0);
  EXPECT_DOUBLE_EQ(y[1], 300.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(y[3], 20.0);
}

}  // namespace
}  // namespace spmvopt
