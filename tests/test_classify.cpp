#include <gtest/gtest.h>

#include <sstream>

#include "classify/classes.hpp"
#include "classify/feature_classifier.hpp"
#include "classify/profile_classifier.hpp"
#include "gen/generators.hpp"

namespace spmvopt::classify {
namespace {

perf::PerfBounds bounds(double csr, double mb, double ml, double imb,
                        double cmp, double peak) {
  perf::PerfBounds b;
  b.p_csr = csr;
  b.p_mb = mb;
  b.p_ml = ml;
  b.p_imb = imb;
  b.p_cmp = cmp;
  b.p_peak = peak;
  return b;
}

TEST(ClassSet, BasicOperations) {
  ClassSet s;
  EXPECT_TRUE(s.empty());
  s.add(Bottleneck::ML);
  s.add(Bottleneck::IMB);
  EXPECT_TRUE(s.has(Bottleneck::ML));
  EXPECT_FALSE(s.has(Bottleneck::MB));
  EXPECT_EQ(s.count(), 2);
  s.remove(Bottleneck::ML);
  EXPECT_FALSE(s.has(Bottleneck::ML));
}

TEST(ClassSet, ToStringMatchesPaperNotation) {
  ClassSet s;
  s.add(Bottleneck::ML);
  s.add(Bottleneck::IMB);
  EXPECT_EQ(s.to_string(), "{ML,IMB}");
  EXPECT_EQ(ClassSet().to_string(), "{}");
}

TEST(ClassSet, LabelsRoundTrip) {
  ClassSet s;
  s.add(Bottleneck::MB);
  s.add(Bottleneck::CMP);
  const auto labels = s.to_labels();
  EXPECT_EQ(labels, (std::vector<int>{1, 0, 0, 1, 0}));
  EXPECT_EQ(ClassSet::from_labels(labels), s);
}

TEST(ClassSet, EmptySetEncodesDummyClass) {
  const auto labels = ClassSet().to_labels();
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 0, 0, 1}));
  EXPECT_TRUE(ClassSet::from_labels(labels).empty());
}

TEST(ProfileClassifier, DetectsImb) {
  // P_IMB well above P_CSR: thread imbalance dominates.
  const auto cls = classify_from_bounds(bounds(1.0, 3.0, 1.0, 2.0, 2.0, 4.0));
  EXPECT_TRUE(cls.has(Bottleneck::IMB));
  EXPECT_FALSE(cls.has(Bottleneck::ML));
}

TEST(ProfileClassifier, DetectsMl) {
  const auto cls = classify_from_bounds(bounds(1.0, 3.0, 2.0, 1.0, 2.5, 4.0));
  EXPECT_TRUE(cls.has(Bottleneck::ML));
  EXPECT_FALSE(cls.has(Bottleneck::IMB));
}

TEST(ProfileClassifier, DetectsMb) {
  // Baseline at the bandwidth roof; CMP bound between MB and peak.
  const auto cls = classify_from_bounds(bounds(2.9, 3.0, 3.0, 3.0, 3.5, 4.0));
  EXPECT_TRUE(cls.has(Bottleneck::MB));
  EXPECT_FALSE(cls.has(Bottleneck::CMP));
}

TEST(ProfileClassifier, DetectsCmpWhenCmpBelowMb) {
  // Eq. (1): P_CMP < P_MB ⇒ not memory bound ⇒ compute-limited.
  const auto cls = classify_from_bounds(bounds(1.0, 3.0, 1.1, 1.1, 2.0, 4.0));
  EXPECT_TRUE(cls.has(Bottleneck::CMP));
}

TEST(ProfileClassifier, DetectsCmpWhenCmpAbovePeak) {
  // Working set in cache: P_CMP blows past the DRAM-derived P_peak.
  const auto cls = classify_from_bounds(bounds(1.0, 3.0, 1.1, 1.1, 5.0, 4.0));
  EXPECT_TRUE(cls.has(Bottleneck::CMP));
}

TEST(ProfileClassifier, MultilabelDetection) {
  // Both irregular accesses and imbalance pay off.
  const auto cls = classify_from_bounds(bounds(1.0, 5.0, 1.5, 1.5, 4.0, 6.0));
  EXPECT_TRUE(cls.has(Bottleneck::ML));
  EXPECT_TRUE(cls.has(Bottleneck::IMB));
}

TEST(ProfileClassifier, WellOptimizedMatrixGetsNoClass) {
  // Baseline ~ all bounds but MB window not satisfied (P_CMP <= P_MB fails
  // CMP only if ... ): pick values where nothing triggers.
  const auto cls = classify_from_bounds(bounds(3.0, 3.1, 3.1, 3.1, 3.5, 4.0));
  // MB requires P_MB < P_CMP < P_peak — 3.1 < 3.5 < 4.0 holds and
  // P_CSR ≈ P_MB, so MB triggers; adjust to break the ≈.
  EXPECT_TRUE(cls.has(Bottleneck::MB));
  const auto none = classify_from_bounds(bounds(3.0, 4.0, 3.2, 3.2, 4.5, 5.0));
  EXPECT_TRUE(none.empty());
}

TEST(ProfileClassifier, ThresholdsAreBoundaries) {
  ProfileParams p;
  p.t_ml = 1.25;
  // Ratio exactly at threshold: not classified (strict >).
  const auto at = classify_from_bounds(bounds(1.0, 9.0, 1.25, 1.0, 8.0, 10.0), p);
  EXPECT_FALSE(at.has(Bottleneck::ML));
  const auto above =
      classify_from_bounds(bounds(1.0, 9.0, 1.26, 1.0, 8.0, 10.0), p);
  EXPECT_TRUE(above.has(Bottleneck::ML));
}

TEST(ProfileClassifier, RejectsBadInputs) {
  EXPECT_THROW((void)classify_from_bounds(bounds(0.0, 1, 1, 1, 1, 1)),
               std::invalid_argument);
  ProfileParams bad;
  bad.approx_tol = 0.5;
  EXPECT_THROW((void)classify_from_bounds(bounds(1, 1, 1, 1, 1, 1), bad),
               std::invalid_argument);
}

TEST(ProfileClassifier, EndToEndOnRealMatrix) {
  // Smoke test of the full measured path on a small matrix.
  perf::BoundsConfig cfg;
  cfg.measure.iterations = 4;
  cfg.measure.runs = 2;
  cfg.measure.warmup = 1;
  const ProfileResult r = classify_profile(gen::stencil_2d_5pt(48, 48), {}, cfg);
  EXPECT_GT(r.bounds.p_csr, 0.0);
  EXPECT_GT(r.bounds.p_peak, r.bounds.p_mb * 0.99);
}

// --- Feature classifier ---

TEST(FeatureClassifier, LearnsSyntheticLabeling) {
  // Label rule: matrices with high nnz_sd are {IMB}; others {}.
  std::vector<features::FeatureVector> fv;
  std::vector<ClassSet> labels;
  for (int k = 0; k < 12; ++k) {
    const CsrMatrix imb = gen::few_dense_rows(600 + 50 * k, 3, 3, 400, 100 + k);
    fv.push_back(features::extract_features(imb));
    ClassSet s;
    s.add(Bottleneck::IMB);
    labels.push_back(s);
    const CsrMatrix uni = gen::random_uniform(600 + 50 * k, 5, 200 + k);
    fv.push_back(features::extract_features(uni));
    labels.push_back(ClassSet());
  }
  FeatureClassifier clf;
  clf.train(fv, labels);
  const auto pred_imb =
      clf.classify(gen::few_dense_rows(800, 3, 3, 500, 999));
  EXPECT_TRUE(pred_imb.has(Bottleneck::IMB));
  const auto pred_none = clf.classify(gen::random_uniform(800, 5, 998));
  EXPECT_TRUE(pred_none.empty());
}

TEST(FeatureClassifier, SaveLoadRoundTrip) {
  std::vector<features::FeatureVector> fv;
  std::vector<ClassSet> labels;
  for (int k = 0; k < 8; ++k) {
    fv.push_back(features::extract_features(gen::dense(16 + k)));
    ClassSet s;
    s.add(Bottleneck::MB);
    labels.push_back(s);
    fv.push_back(features::extract_features(gen::random_uniform(500, 5, 7 + k)));
    labels.push_back(ClassSet());
  }
  FeatureClassifier clf;
  clf.train(fv, labels);

  std::stringstream buffer;
  clf.save(buffer);
  const FeatureClassifier restored = FeatureClassifier::load(buffer);
  // Same predictions on fresh matrices.
  for (const auto& m : {gen::dense(20), gen::random_uniform(400, 5, 77)}) {
    EXPECT_EQ(restored.classify(m).bits(), clf.classify(m).bits());
  }
}

TEST(FeatureClassifier, LoadRejectsGarbage) {
  std::istringstream bad("not-a-model 9");
  EXPECT_THROW((void)FeatureClassifier::load(bad), std::runtime_error);
}

TEST(FeatureClassifier, UntrainedThrows) {
  const FeatureClassifier clf;
  EXPECT_THROW((void)clf.classify(gen::dense(8)), std::logic_error);
  std::ostringstream os;
  EXPECT_THROW(clf.save(os), std::logic_error);
}

TEST(FeatureClassifier, TrainValidatesInputs) {
  FeatureClassifier clf;
  EXPECT_THROW(clf.train({}, {}), std::invalid_argument);
}

TEST(FeatureClassifier, TrainFromPoolEndToEnd) {
  std::vector<CsrMatrix> pool;
  for (int k = 0; k < 6; ++k) {
    pool.push_back(gen::stencil_2d_5pt(20 + 4 * k, 20));
    pool.push_back(gen::random_uniform(900 + 100 * k, 6, 10 + k));
  }
  perf::BoundsConfig cfg;
  cfg.measure.iterations = 2;
  cfg.measure.runs = 1;
  cfg.measure.warmup = 0;
  const TrainingResult result =
      train_from_pool(pool, features::onnz_feature_set(), {}, cfg);
  EXPECT_TRUE(result.classifier.trained());
  EXPECT_EQ(result.features.size(), pool.size());
  EXPECT_EQ(result.labels.size(), pool.size());
}

}  // namespace
}  // namespace spmvopt::classify
