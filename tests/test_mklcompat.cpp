#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "gen/generators.hpp"
#include "mklcompat/inspector_executor.hpp"
#include "mklcompat/ref_csr.hpp"

namespace spmvopt::mklcompat {
namespace {

TEST(RefDcsrmv, MatchesReference) {
  const CsrMatrix a = gen::power_law(500, 8, 2.0, 3);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  ref_dcsrmv(a, x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(RefDcsrmv, AlphaBetaForm) {
  const CsrMatrix a = gen::stencil_2d_5pt(8, 8);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> ax(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, ax);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), 2.0);
  ref_dcsrmv(3.0, a, x.data(), 0.5, y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], 3.0 * ax[i] + 0.5 * 2.0, 1e-9);
}

TEST(InspectorExecutor, AnalyzeThenExecuteIsCorrect) {
  const CsrMatrix a = gen::random_uniform(800, 6, 5);
  const auto ie = InspectorExecutorSpmv::analyze(a, {}, 2);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  ie.execute(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(InspectorExecutor, AnalysisCostIsReported) {
  const CsrMatrix a = gen::stencil_2d_5pt(48, 48);
  const auto ie = InspectorExecutorSpmv::analyze(a, {}, 2);
  EXPECT_GT(ie.analysis_seconds(), 0.0);
  EXPECT_FALSE(ie.chosen_kernel().empty());
}

TEST(InspectorExecutor, PicksLongRowKernelForSkewedMatrix) {
  const CsrMatrix a = gen::few_dense_rows(2000, 3, 4, 1500, 7);
  const auto ie = InspectorExecutorSpmv::analyze(a, {}, 2);
  // The shortlist must have included the two-phase kernel; whichever wins,
  // execution stays correct.
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  ie.execute(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(InspectorExecutor, UniformMatrixPicksStaticVectorized) {
  const CsrMatrix a = gen::random_uniform(500, 8, 11);
  const auto ie = InspectorExecutorSpmv::analyze(a, {}, 2);
  EXPECT_EQ(ie.chosen_kernel(), "static-vectorized");
}

TEST(InspectorExecutor, MoreHintedCallsMeansMoreAnalysis) {
  const CsrMatrix a = gen::power_law(3000, 10, 1.8, 9);
  InspectorExecutorSpmv::Hints few{16}, many{256};
  // Best-of-3: one wall-clock pair flakes when ctest runs sibling suites in
  // parallel and a run gets descheduled.
  double cheap = std::numeric_limits<double>::infinity();
  double thorough = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    cheap = std::min(cheap,
                     InspectorExecutorSpmv::analyze(a, few, 2).analysis_seconds());
    thorough = std::min(
        thorough, InspectorExecutorSpmv::analyze(a, many, 2).analysis_seconds());
  }
  EXPECT_LT(cheap, thorough * 5.0);
}

}  // namespace
}  // namespace spmvopt::mklcompat
