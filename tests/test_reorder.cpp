#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/generators.hpp"
#include "sparse/reorder.hpp"
#include "support/rng.hpp"

namespace spmvopt {
namespace {

TEST(Permutation, IdentityAndInverse) {
  const Permutation id = Permutation::identity(5);
  id.validate();
  const auto inv = id.inverse();
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(id.perm[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(inv[static_cast<std::size_t>(i)], i);
  }
}

TEST(Permutation, InverseComposesToIdentity) {
  Permutation p;
  p.perm = {3, 1, 4, 0, 2};
  p.validate();
  const auto inv = p.inverse();
  for (index_t i = 0; i < 5; ++i)
    EXPECT_EQ(inv[static_cast<std::size_t>(p.perm[static_cast<std::size_t>(i)])], i);
}

TEST(Permutation, ValidateRejectsNonBijection) {
  Permutation dup;
  dup.perm = {0, 0, 2};
  EXPECT_THROW(dup.validate(), std::invalid_argument);
  Permutation range;
  range.perm = {0, 5, 1};
  EXPECT_THROW(range.validate(), std::invalid_argument);
}

TEST(Rcm, ProducesValidPermutation) {
  const CsrMatrix a = gen::random_uniform(500, 6, 11);
  const Permutation p = reverse_cuthill_mckee(a);
  EXPECT_EQ(p.size(), a.nrows());
  p.validate();
}

TEST(Rcm, ReducesBandwidthOfShuffledStencil) {
  // A 1-D chain renumbered randomly has huge bandwidth; RCM must recover a
  // near-minimal one (a chain's optimal bandwidth is 1).
  const index_t n = 400;
  Xoshiro256 rng(3);
  Permutation shuffle = Permutation::identity(n);
  for (index_t i = n - 1; i > 0; --i)
    std::swap(shuffle.perm[static_cast<std::size_t>(i)],
              shuffle.perm[rng.bounded(static_cast<std::uint64_t>(i) + 1)]);

  CooMatrix chain(n, n);
  for (index_t i = 0; i < n; ++i) {
    chain.add(i, i, 2.0);
    if (i + 1 < n) chain.add_symmetric(i, i + 1, -1.0);
  }
  chain.compress();
  const CsrMatrix shuffled =
      permute_symmetric(CsrMatrix::from_coo(chain), shuffle);
  ASSERT_GT(matrix_bandwidth(shuffled), 50);  // scrambled

  const Permutation rcm = reverse_cuthill_mckee(shuffled);
  const CsrMatrix restored = permute_symmetric(shuffled, rcm);
  EXPECT_LE(matrix_bandwidth(restored), 2);
}

TEST(Rcm, ReducesBandwidthOf2dStencilShuffle) {
  const CsrMatrix grid = gen::stencil_2d_5pt(24, 24);
  Xoshiro256 rng(7);
  Permutation shuffle = Permutation::identity(grid.nrows());
  for (index_t i = grid.nrows() - 1; i > 0; --i)
    std::swap(shuffle.perm[static_cast<std::size_t>(i)],
              shuffle.perm[rng.bounded(static_cast<std::uint64_t>(i) + 1)]);
  const CsrMatrix shuffled = permute_symmetric(grid, shuffle);
  const CsrMatrix rcm =
      permute_symmetric(shuffled, reverse_cuthill_mckee(shuffled));
  // A 24x24 grid's optimal bandwidth is ~24; RCM should land within ~2x.
  EXPECT_LE(matrix_bandwidth(rcm), 60);
  EXPECT_LT(matrix_bandwidth(rcm), matrix_bandwidth(shuffled) / 4);
}

TEST(Rcm, HandlesDisconnectedComponentsAndIsolatedVertices) {
  CooMatrix coo(10, 10);
  coo.add_symmetric(0, 1, 1.0);  // component {0,1}
  coo.add_symmetric(4, 5, 1.0);  // component {4,5}
  coo.add(7, 7, 1.0);            // self-loop only
  // vertices 2,3,6,8,9 fully isolated
  coo.compress();
  const Permutation p = reverse_cuthill_mckee(CsrMatrix::from_coo(coo));
  p.validate();
  EXPECT_EQ(p.size(), 10);
}

TEST(Rcm, RejectsRectangular) {
  CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.compress();
  EXPECT_THROW((void)reverse_cuthill_mckee(CsrMatrix::from_coo(coo)),
               std::invalid_argument);
}

TEST(PermuteSymmetric, SpmvCommutesWithPermutation) {
  // B = P A P^T must satisfy B (P x) = P (A x).
  const CsrMatrix a = gen::random_uniform(200, 5, 9);
  const Permutation p = reverse_cuthill_mckee(a);
  const CsrMatrix b = permute_symmetric(a, p);

  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> ax(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, ax);

  std::vector<value_t> px(x.size()), bpx(x.size()), pax(x.size());
  permute_gather(p, x.data(), px.data());
  b.multiply(px, bpx);
  permute_gather(p, ax.data(), pax.data());
  for (std::size_t i = 0; i < bpx.size(); ++i)
    EXPECT_NEAR(bpx[i], pax[i], 1e-12 * std::max(1.0, std::abs(pax[i])));
}

TEST(PermuteSymmetric, GatherScatterAreInverses) {
  Permutation p;
  p.perm = {2, 0, 3, 1};
  const std::vector<value_t> v{10, 20, 30, 40};
  std::vector<value_t> g(4), back(4);
  permute_gather(p, v.data(), g.data());
  EXPECT_EQ(g, (std::vector<value_t>{30, 10, 40, 20}));
  permute_scatter(p, g.data(), back.data());
  EXPECT_EQ(back, v);
}

TEST(PermuteSymmetric, PreservesValuesAndPattern) {
  const CsrMatrix a = gen::banded(100, 10, 5, 3);
  const Permutation p = reverse_cuthill_mckee(a);
  const CsrMatrix b = permute_symmetric(a, p);
  EXPECT_EQ(b.nnz(), a.nnz());
  // Sum of values is permutation-invariant.
  value_t sa = 0.0, sb = 0.0;
  for (index_t k = 0; k < a.nnz(); ++k) sa += a.values()[k];
  for (index_t k = 0; k < b.nnz(); ++k) sb += b.values()[k];
  EXPECT_NEAR(sa, sb, 1e-9);
}

TEST(Bandwidth, KnownValues) {
  EXPECT_EQ(matrix_bandwidth(gen::diagonal(10)), 0);
  const CsrMatrix grid = gen::stencil_2d_5pt(7, 9);
  EXPECT_EQ(matrix_bandwidth(grid), 7);  // the nx stride
}

}  // namespace
}  // namespace spmvopt
