#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace spmvopt {
namespace {

TEST(Stats, ArithmeticMean) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(xs), 2.5);
}

TEST(Stats, ArithmeticMeanSingle) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(xs), 7.0);
}

TEST(Stats, HarmonicMeanKnownValue) {
  // H(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7.
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 12.0 / 7.0);
}

TEST(Stats, HarmonicMeanOfEqualValuesIsThatValue) {
  const std::vector<double> xs{3.5, 3.5, 3.5};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 3.5);
}

TEST(Stats, HarmonicLeqGeometricLeqArithmetic) {
  const std::vector<double> xs{1.0, 5.0, 9.0, 2.0};
  EXPECT_LE(harmonic_mean(xs), geometric_mean(xs) + 1e-12);
  EXPECT_LE(geometric_mean(xs), arithmetic_mean(xs) + 1e-12);
}

TEST(Stats, HarmonicMeanRejectsNonpositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)harmonic_mean(xs), std::invalid_argument);
}

TEST(Stats, GeometricMeanKnownValue) {
  const std::vector<double> xs{2.0, 8.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Stats, StddevPopulation) {
  // Population sd of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MedianOdd) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Stats, MedianEven) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, MedianIgnoresOutliers) {
  // The reason P_IMB uses the median (§III-B).
  const std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 1000.0};
  EXPECT_DOUBLE_EQ(median(xs), 1.0);
}

TEST(Stats, MedianDoesNotMutateInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const std::vector<double> copy = xs;
  (void)median(xs);
  EXPECT_EQ(xs, copy);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW((void)arithmetic_mean(empty), std::invalid_argument);
  EXPECT_THROW((void)harmonic_mean(empty), std::invalid_argument);
  EXPECT_THROW((void)median(empty), std::invalid_argument);
  EXPECT_THROW((void)min_of(empty), std::invalid_argument);
}

TEST(Stats, SummarizeRatesHarmonicMean) {
  // Two runs at 1 Gflop/s and 2 Gflop/s for flops=1e9: sec/op = 1.0, 0.5.
  const std::vector<double> sec{1.0, 0.5};
  const RateSummary s = summarize_rates(sec, 1e9);
  EXPECT_NEAR(s.gflops, harmonic_mean(std::vector<double>{1.0, 2.0}), 1e-12);
  EXPECT_NEAR(s.best_gflops, 2.0, 1e-12);
  EXPECT_NEAR(s.seconds_per_op, 1e9 / (s.gflops * 1e9), 1e-12);
}

TEST(Stats, SummarizeRatesRejectsNonpositiveTime) {
  const std::vector<double> sec{1.0, -0.5};
  EXPECT_THROW((void)summarize_rates(sec, 1e9), std::invalid_argument);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), median(xs));
}

TEST(Stats, QuantileInterpolatesLinearly) {
  // q=0.25 over {1,2,3,4}: rank 0.75 -> 1 + 0.75*(2-1).
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
}

TEST(Stats, IqrFilterDropsGrossOutlier) {
  const std::vector<double> xs{10.0, 10.1, 9.9, 10.05, 9.95, 42.0};
  const auto kept = iqr_filter(xs);
  EXPECT_EQ(kept.size(), 5u);
  for (double v : kept) EXPECT_LT(v, 11.0);
}

TEST(Stats, IqrFilterKeepsCleanSamples) {
  const std::vector<double> xs{1.0, 1.1, 0.9, 1.05, 0.95};
  EXPECT_EQ(iqr_filter(xs).size(), xs.size());
}

TEST(Stats, IqrFilterPassesThroughTinySamples) {
  // n < 4 has no meaningful quartiles; nothing is rejected.
  const std::vector<double> xs{1.0, 100.0, 10000.0};
  EXPECT_EQ(iqr_filter(xs), xs);
}

TEST(Stats, MeanConfidenceBracketsMean) {
  const std::vector<double> xs{10.0, 11.0, 9.0, 10.5, 9.5};
  const MeanCi ci = mean_confidence(xs);
  EXPECT_DOUBLE_EQ(ci.mean, arithmetic_mean(xs));
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
}

TEST(Stats, MeanConfidenceKnownTValue) {
  // n=4, s=1, t_{0.975,3} = 3.182: half-width = 3.182/2.
  const std::vector<double> xs{9.0, 11.0, 9.0, 11.0};
  const MeanCi ci = mean_confidence(xs, 0.95);
  const double s = std::sqrt(4.0 / 3.0);  // sample sd of {9,11,9,11}
  EXPECT_NEAR(ci.hi - ci.mean, 3.182 * s / 2.0, 1e-3);
}

TEST(Stats, MeanConfidenceDegenerateCases) {
  const MeanCi one = mean_confidence(std::vector<double>{5.0});
  EXPECT_DOUBLE_EQ(one.lo, 5.0);
  EXPECT_DOUBLE_EQ(one.hi, 5.0);
  const MeanCi flat = mean_confidence(std::vector<double>{2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(flat.lo, flat.hi);
}

TEST(Stats, MeanConfidenceWiderAtHigherConfidence) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const MeanCi c95 = mean_confidence(xs, 0.95);
  const MeanCi c99 = mean_confidence(xs, 0.99);
  EXPECT_GT(c99.hi - c99.lo, c95.hi - c95.lo);
}

}  // namespace
}  // namespace spmvopt
