#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace spmvopt {
namespace {

TEST(Stats, ArithmeticMean) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(xs), 2.5);
}

TEST(Stats, ArithmeticMeanSingle) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(xs), 7.0);
}

TEST(Stats, HarmonicMeanKnownValue) {
  // H(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7.
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 12.0 / 7.0);
}

TEST(Stats, HarmonicMeanOfEqualValuesIsThatValue) {
  const std::vector<double> xs{3.5, 3.5, 3.5};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 3.5);
}

TEST(Stats, HarmonicLeqGeometricLeqArithmetic) {
  const std::vector<double> xs{1.0, 5.0, 9.0, 2.0};
  EXPECT_LE(harmonic_mean(xs), geometric_mean(xs) + 1e-12);
  EXPECT_LE(geometric_mean(xs), arithmetic_mean(xs) + 1e-12);
}

TEST(Stats, HarmonicMeanRejectsNonpositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW((void)harmonic_mean(xs), std::invalid_argument);
}

TEST(Stats, GeometricMeanKnownValue) {
  const std::vector<double> xs{2.0, 8.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Stats, StddevPopulation) {
  // Population sd of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, MedianOdd) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Stats, MedianEven) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, MedianIgnoresOutliers) {
  // The reason P_IMB uses the median (§III-B).
  const std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 1000.0};
  EXPECT_DOUBLE_EQ(median(xs), 1.0);
}

TEST(Stats, MedianDoesNotMutateInput) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const std::vector<double> copy = xs;
  (void)median(xs);
  EXPECT_EQ(xs, copy);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW((void)arithmetic_mean(empty), std::invalid_argument);
  EXPECT_THROW((void)harmonic_mean(empty), std::invalid_argument);
  EXPECT_THROW((void)median(empty), std::invalid_argument);
  EXPECT_THROW((void)min_of(empty), std::invalid_argument);
}

TEST(Stats, SummarizeRatesHarmonicMean) {
  // Two runs at 1 Gflop/s and 2 Gflop/s for flops=1e9: sec/op = 1.0, 0.5.
  const std::vector<double> sec{1.0, 0.5};
  const RateSummary s = summarize_rates(sec, 1e9);
  EXPECT_NEAR(s.gflops, harmonic_mean(std::vector<double>{1.0, 2.0}), 1e-12);
  EXPECT_NEAR(s.best_gflops, 2.0, 1e-12);
  EXPECT_NEAR(s.seconds_per_op, 1e9 / (s.gflops * 1e9), 1e-12);
}

TEST(Stats, SummarizeRatesRejectsNonpositiveTime) {
  const std::vector<double> sec{1.0, -0.5};
  EXPECT_THROW((void)summarize_rates(sec, 1e9), std::invalid_argument);
}

}  // namespace
}  // namespace spmvopt
