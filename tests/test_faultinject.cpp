// Deterministic fault-injection tests (DESIGN.md §6): arm each registered
// point and assert the corresponding degradation or recovery path runs — and
// that the degraded result still matches the serial oracle.  These tests
// carry the `robust` ctest label; the CI fault-injection job runs them under
// ASan+UBSan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "classify/profile_classifier.hpp"
#include "gen/generators.hpp"
#include "optimize/optimized_spmv.hpp"
#include "robust/fault_inject.hpp"
#include "sparse/binary_io.hpp"
#include "sparse/mmio.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracle.hpp"

namespace spmvopt {
namespace {

class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!robust::fault_injection_enabled())
      GTEST_SKIP() << "built with SPMVOPT_FAULT_INJECTION=OFF";
    robust::fault_disarm_all();
  }
  void TearDown() override { robust::fault_disarm_all(); }
};

/// Degraded plans must still compute the right answer.
void expect_matches_oracle(const optimize::OptimizedSpmv& spmv,
                           const CsrMatrix& a) {
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), -1.0);
  spmv.run(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i],
                1e-9 * std::max(1.0, std::abs(expected[i])))
        << "row " << i;
}

TEST_F(FaultInject, RegistryListsEveryPoint) {
  const auto points = robust::fault_points();
  EXPECT_GE(points.size(), 10u);
  for (const char* p :
       {"coo_csr.alloc", "mmio.alloc", "binary_io.short_read",
        "binary_io.short_write", "binary_io.bit_flip", "convert.delta",
        "convert.split", "convert.sell", "convert.bcsr",
        "kernels.merge_setup", "classify.profile_overrun"}) {
    bool found = false;
    for (const auto& name : points) found |= (name == p);
    EXPECT_TRUE(found) << p;
  }
}

TEST_F(FaultInject, UnknownPointRejectedOnArm) {
  EXPECT_THROW(robust::fault_arm("no.such.point"), std::invalid_argument);
  EXPECT_THROW(robust::fault_arm("convert.delta", 0), std::invalid_argument);
}

TEST_F(FaultInject, FiresExactlyOnceOnTheNthHit) {
  robust::fault_arm("convert.delta", 2);
  EXPECT_FALSE(robust::fault_fire("convert.delta"));  // 1st hit
  EXPECT_TRUE(robust::fault_fire("convert.delta"));   // 2nd: fires
  EXPECT_FALSE(robust::fault_fire("convert.delta"));  // one-shot
  EXPECT_GE(robust::fault_hit_count("convert.delta"), 3);
}

TEST_F(FaultInject, MmioAllocationFailureIsResource) {
  robust::fault_arm("mmio.alloc");
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0\n");
  Expected<CooMatrix> r = read_matrix_market_checked(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Resource);
}

TEST_F(FaultInject, CooCsrAllocationFailureIsResource) {
  robust::fault_arm("coo_csr.alloc");
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.compress();
  Expected<CsrMatrix> r = CsrMatrix::from_coo_checked(coo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Resource);
  // One-shot: the retry succeeds.
  EXPECT_TRUE(CsrMatrix::from_coo_checked(coo).ok());
}

class FaultInjectCache : public FaultInject {
 protected:
  void SetUp() override {
    FaultInject::SetUp();
    if (IsSkipped()) return;
    const auto dir = std::filesystem::temp_directory_path();
    mtx_ = (dir / "spmvopt_fi.mtx").string();
    cache_ = (dir / "spmvopt_fi.csrbin").string();
    matrix_ = gen::banded(150, 9, 3);
    write_matrix_market_file(mtx_, matrix_);
    write_csr_binary_file(cache_, matrix_);
  }
  void TearDown() override {
    std::remove(mtx_.c_str());
    std::remove(cache_.c_str());
    std::remove((cache_ + ".tmp").c_str());
    FaultInject::TearDown();
  }
  std::string mtx_;
  std::string cache_;
  CsrMatrix matrix_;
};

TEST_F(FaultInjectCache, ShortReadTriggersRecovery) {
  robust::fault_arm("binary_io.short_read");
  bool recovered = false;
  Expected<CsrMatrix> r = load_csr_cached(mtx_, cache_, &recovered);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(recovered);  // the injected short read was treated as corruption
  EXPECT_TRUE(r.value().equals(matrix_));
}

TEST_F(FaultInjectCache, BitFlipIsCaughtByChecksumAndRecovered) {
  robust::fault_arm("binary_io.bit_flip");
  bool recovered = false;
  Expected<CsrMatrix> r = load_csr_cached(mtx_, cache_, &recovered);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(recovered);
  EXPECT_TRUE(r.value().equals(matrix_));
}

TEST_F(FaultInjectCache, ShortWriteFailsAtomicallyKeepingOldCache) {
  robust::fault_arm("binary_io.short_write");
  Status st = write_csr_binary_file_checked(cache_, matrix_);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().category(), ErrorCategory::Io);
  EXPECT_FALSE(std::filesystem::exists(cache_ + ".tmp"));  // cleaned up
  // The pre-existing cache was never touched (write went to the tmp file).
  Expected<CsrMatrix> old = read_csr_binary_file_checked(cache_);
  ASSERT_TRUE(old.ok()) << old.error().to_string();
  EXPECT_TRUE(old.value().equals(matrix_));
}

TEST_F(FaultInject, DeltaConversionFailureDegradesToCsr) {
  const CsrMatrix a = gen::banded(200, 11, 4);
  robust::fault_arm("convert.delta");
  optimize::Plan p;
  p.delta = true;
  const auto spmv = optimize::OptimizedSpmv::create(a, p);
  EXPECT_FALSE(spmv.plan().delta);
  EXPECT_TRUE(spmv.degradation().dropped("delta"));
  expect_matches_oracle(spmv, a);
}

TEST_F(FaultInject, SplitConversionFailureDegradesToCsr) {
  const CsrMatrix a = gen::few_dense_rows(300, 2, 6, 150);
  robust::fault_arm("convert.split");
  optimize::Plan p;
  p.split_long_rows = true;
  const auto spmv = optimize::OptimizedSpmv::create(a, p);
  EXPECT_FALSE(spmv.plan().split_long_rows);
  EXPECT_TRUE(spmv.degradation().dropped("split"));
  expect_matches_oracle(spmv, a);
}

TEST_F(FaultInject, MergeSetupFailureDegradesToCsr) {
  // The IMB monster-row fixture the optimizer would route to merge; a failed
  // merge setup must drop straight to baseline CSR and still be correct.
  const CsrMatrix a = gen::monster_row(512, 512, 1, 8, 5);
  robust::fault_arm("kernels.merge_setup");
  optimize::Plan p;
  p.merge_path = true;
  const auto spmv = optimize::OptimizedSpmv::create(a, p);
  EXPECT_FALSE(spmv.plan().merge_path);
  EXPECT_TRUE(spmv.degradation().dropped("merge"));
  expect_matches_oracle(spmv, a);
}

TEST_F(FaultInject, SellConversionFailureDegradesToCsr) {
  const CsrMatrix a = gen::random_uniform(256, 7, 13);
  robust::fault_arm("convert.sell");
  optimize::Plan p;
  p.sell = true;
  const auto spmv = optimize::OptimizedSpmv::create(a, p);
  EXPECT_FALSE(spmv.plan().sell);
  EXPECT_TRUE(spmv.degradation().dropped("sell"));
  expect_matches_oracle(spmv, a);
}

TEST_F(FaultInject, BcsrConversionFailureDegradesToCsr) {
  const CsrMatrix a = gen::stencil_2d_5pt(24, 24);
  robust::fault_arm("convert.bcsr");
  optimize::Plan p;
  p.bcsr = true;
  const auto spmv = optimize::OptimizedSpmv::create(a, p);
  EXPECT_FALSE(spmv.plan().bcsr);
  EXPECT_TRUE(spmv.degradation().dropped("bcsr"));
  expect_matches_oracle(spmv, a);
}

// The acceptance sweep: arm each conversion fault point in turn and build the
// matching single-feature plan on every matrix in the adversarial fuzzer
// catalog.  Every combination must degrade (never throw), name the dropped
// feature, and still match the compensated-summation oracle.
TEST_F(FaultInject, EveryFuzzFamilyDegradesToOracleMatch) {
  struct PointFeature {
    const char* point;
    bool optimize::Plan::* flag;
    const char* feature;
  };
  const PointFeature sweep[] = {
      {"convert.delta", &optimize::Plan::delta, "delta"},
      {"convert.split", &optimize::Plan::split_long_rows, "split"},
      {"kernels.merge_setup", &optimize::Plan::merge_path, "merge"},
      {"convert.sell", &optimize::Plan::sell, "sell"},
      {"convert.bcsr", &optimize::Plan::bcsr, "bcsr"},
  };
  for (const verify::FuzzCase& fc : verify::adversarial_suite()) {
    const CsrMatrix& a = fc.matrix;
    const std::vector<value_t> x = verify::adversarial_vector(a.ncols());
    for (const PointFeature& pf : sweep) {
      SCOPED_TRACE(fc.name + std::string(" x ") + pf.point);
      robust::fault_arm(pf.point);
      optimize::Plan p;
      p.*pf.flag = true;
      const auto spmv = optimize::OptimizedSpmv::create(a, p);
      EXPECT_FALSE(spmv.plan().*pf.flag);
      EXPECT_TRUE(spmv.degradation().dropped(pf.feature));
      std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), -1.0);
      spmv.run(x.data(), y.data());
      const verify::CompareReport rep = verify::check_spmv(a, x, y);
      EXPECT_TRUE(rep.pass()) << rep.to_string();
      robust::fault_disarm_all();
    }
  }
}

TEST_F(FaultInject, NoFaultMeansNoDegradation) {
  const CsrMatrix a = gen::banded(200, 11, 4);
  optimize::Plan p;
  p.delta = true;
  const auto spmv = optimize::OptimizedSpmv::create(a, p);
  EXPECT_TRUE(spmv.plan().delta);
  EXPECT_FALSE(spmv.degradation().degraded());
  expect_matches_oracle(spmv, a);
}

TEST_F(FaultInject, ProfileOverrunFallsBackToFeatureHeuristics) {
  const CsrMatrix a = gen::random_uniform(400, 8, 3);
  robust::fault_arm("classify.profile_overrun");
  perf::BoundsConfig cfg;
  cfg.measure.iterations = 2;
  cfg.measure.runs = 1;
  cfg.measure.warmup = 0;
  const auto r = classify::classify_profile(a, {}, cfg);
  EXPECT_TRUE(r.bounds.overrun);
  EXPECT_TRUE(r.used_fallback);
  // The fallback classifier still emits *some* decision from structure.
  EXPECT_GT(r.bounds.p_csr, 0.0);
}

}  // namespace
}  // namespace spmvopt
