#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "gen/generators.hpp"
#include "optimize/optimizers.hpp"

namespace spmvopt::optimize {
namespace {

OptimizerConfig fast_config() {
  OptimizerConfig cfg;
  cfg.nthreads = 2;
  cfg.measure.iterations = 2;
  cfg.measure.runs = 1;
  cfg.measure.warmup = 0;
  return cfg;
}

void expect_correct(const CsrMatrix& a, const OptimizeOutcome& out) {
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), std::nan(""));
  out.spmv.run(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(Optimizers, ProfileGuidedProducesRunnableKernel) {
  const CsrMatrix a = gen::stencil_2d_5pt(40, 40);
  const OptimizeOutcome out = optimize_profile(a, fast_config());
  expect_correct(a, out);
  EXPECT_GT(out.preprocess_seconds, 0.0);
}

TEST(Optimizers, TrivialSingleSelectsFromFiveCandidates) {
  const CsrMatrix a = gen::random_uniform(600, 7, 3);
  const OptimizeOutcome out = optimize_trivial_single(a, fast_config());
  expect_correct(a, out);
  EXPECT_GT(out.preprocess_seconds, 0.0);
  EXPECT_FALSE(out.plan.is_baseline());  // picked one of the five
}

TEST(Optimizers, TrivialCombinedCostsMoreThanSingle) {
  const CsrMatrix a = gen::power_law(800, 10, 2.0, 5);
  // Sweeping 3x the candidates must cost more preprocessing.  Compare
  // best-of-3 times: a single wall-clock pair flakes when ctest runs
  // sibling suites in parallel and one side gets descheduled.
  double single = std::numeric_limits<double>::infinity();
  double combined = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    single = std::min(single,
                      optimize_trivial_single(a, fast_config()).preprocess_seconds);
    const auto out = optimize_trivial_combined(a, fast_config());
    expect_correct(a, out);
    combined = std::min(combined, out.preprocess_seconds);
  }
  EXPECT_GT(combined, single);
}

TEST(Optimizers, OracleRunsFullPlanSpace) {
  const CsrMatrix a = gen::stencil_2d_5pt(32, 32);
  const OptimizeOutcome out = optimize_oracle(a, fast_config());
  expect_correct(a, out);
}

TEST(Optimizers, FeatureGuidedUsesTrainedClassifier) {
  // Train a tiny classifier: dense-ish → MB, random → ML.
  std::vector<features::FeatureVector> fv;
  std::vector<classify::ClassSet> labels;
  for (int k = 0; k < 8; ++k) {
    fv.push_back(features::extract_features(gen::dense(24 + k)));
    classify::ClassSet mb;
    mb.add(classify::Bottleneck::MB);
    labels.push_back(mb);
    fv.push_back(
        features::extract_features(gen::random_uniform(700, 6, 40 + k)));
    classify::ClassSet ml;
    ml.add(classify::Bottleneck::ML);
    labels.push_back(ml);
  }
  classify::FeatureClassifier clf;
  clf.train(fv, labels);

  const CsrMatrix a = gen::random_uniform(900, 6, 99);
  const OptimizeOutcome out = optimize_feature(a, clf, fast_config());
  expect_correct(a, out);
  EXPECT_TRUE(out.classes.has(classify::Bottleneck::ML));
  EXPECT_TRUE(out.plan.prefetch);
}

TEST(Optimizers, FeatureGuidedRejectsUntrainedClassifier) {
  const classify::FeatureClassifier clf;
  EXPECT_THROW((void)optimize_feature(gen::dense(8), clf, fast_config()),
               std::invalid_argument);
}

TEST(Optimizers, FeatureGuidedIsCheaperThanProfileGuided) {
  // The headline claim of Table V: feature-guided has the smallest t_pre.
  std::vector<features::FeatureVector> fv;
  std::vector<classify::ClassSet> labels;
  for (int k = 0; k < 6; ++k) {
    fv.push_back(features::extract_features(gen::stencil_2d_5pt(20 + k, 20)));
    labels.push_back(classify::ClassSet());
    fv.push_back(
        features::extract_features(gen::random_uniform(500, 5, 60 + k)));
    labels.push_back(classify::ClassSet());
  }
  classify::FeatureClassifier clf;
  clf.train(fv, labels);

  const CsrMatrix a = gen::stencil_2d_5pt(60, 60);
  const auto feat = optimize_feature(a, clf, fast_config());
  const auto prof = optimize_profile(a, fast_config());
  EXPECT_LT(feat.preprocess_seconds, prof.preprocess_seconds);
}

TEST(Optimizers, MeasureSpmvGflopsIsPositive) {
  const CsrMatrix a = gen::stencil_2d_5pt(32, 32);
  const OptimizedSpmv spmv = OptimizedSpmv::create(a, Plan{}, 2);
  perf::MeasureConfig m;
  m.iterations = 2;
  m.runs = 1;
  m.warmup = 0;
  EXPECT_GT(measure_spmv_gflops(spmv, a, m), 0.0);
}

}  // namespace
}  // namespace spmvopt::optimize
