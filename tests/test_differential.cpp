// The differential runner: every kernel/format/schedule/thread-count variant
// must reproduce the compensated-summation oracle on every adversarial
// structure — this is the deep sweep behind `ctest -L fuzz`.
#include <gtest/gtest.h>

#include <cctype>

#include "gen/generators.hpp"
#include "verify/differential.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracle.hpp"

namespace spmvopt::verify {
namespace {

const std::vector<FuzzCase>& suite() {
  static const std::vector<FuzzCase> s = adversarial_suite();
  return s;
}

class AdversarialDifferential : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialDifferential, AllVariantsMatchOracle) {
  const FuzzCase& c = suite()[static_cast<std::size_t>(GetParam())];
  const auto failures = run_differential(c.matrix);
  EXPECT_TRUE(failures.empty()) << c.name << ": " << describe(failures);
}

TEST_P(AdversarialDifferential, AllVariantsMatchOracleOnAdversarialInput) {
  const FuzzCase& c = suite()[static_cast<std::size_t>(GetParam())];
  DiffConfig config;
  config.x = adversarial_vector(c.matrix.ncols(),
                                static_cast<std::uint64_t>(GetParam()) + 1);
  const auto failures = run_differential(c.matrix, config);
  EXPECT_TRUE(failures.empty()) << c.name << ": " << describe(failures);
}

std::string case_name(const ::testing::TestParamInfo<int>& info) {
  std::string n = suite()[static_cast<std::size_t>(info.param)].name;
  for (char& ch : n)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AdversarialDifferential,
    ::testing::Range(0, static_cast<int>(adversarial_suite().size())),
    case_name);

class SeededDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SeededDifferential, RandomPathologicalMatchesOracle) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const CsrMatrix a = random_pathological(seed);
  const auto failures = run_differential(a);
  EXPECT_TRUE(failures.empty()) << "seed " << seed << ": "
                                << describe(failures);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededDifferential,
                         ::testing::Range(1000, 1010));

// Friendly generator families through the same sweep: the differential
// runner must agree with the existing property tests on non-adversarial
// input (guards the runner itself against false positives).
TEST(Differential, FriendlyFamiliesPass) {
  const CsrMatrix cases[] = {
      gen::stencil_2d_5pt(12, 12),
      gen::banded(300, 25, 8, 3),
      gen::random_uniform(256, 7, 5),
      gen::power_law(400, 6, 1.8, 9),
      gen::few_dense_rows(300, 2, 3, 150, 11),
      gen::short_rows(500, 2.0, 13),
  };
  for (const auto& a : cases) {
    const auto failures = run_differential(a);
    EXPECT_TRUE(failures.empty()) << describe(failures);
  }
}

TEST(Differential, DetectsInjectedKernelBug) {
  // The runner must actually be wired to the comparator: a corrupted matrix
  // (one value perturbed after the oracle was taken) must fail.
  const CsrMatrix a = gen::stencil_2d_5pt(8, 8);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  const Oracle oracle = kahan_reference(a, x);
  CsrMatrix b = a.extract_rows(0, a.nrows());  // deep copy
  b.values_mut()[3] += 0.5;
  std::vector<value_t> y(static_cast<std::size_t>(b.nrows()));
  b.multiply(x, y);
  EXPECT_FALSE(compare(oracle, y, UlpPolicy{}).pass());
}

TEST(Differential, DefaultThreadCountsCoverSerialAndParallel) {
  const auto t = default_thread_counts();
  ASSERT_GE(t.size(), 2u);
  EXPECT_EQ(t.front(), 1);
  EXPECT_GE(t.back(), 2);
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i], t[i - 1]);
}

}  // namespace
}  // namespace spmvopt::verify
