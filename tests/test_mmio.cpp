#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "gen/generators.hpp"
#include "sparse/dense.hpp"
#include "sparse/mmio.hpp"

namespace spmvopt {
namespace {

TEST(Mmio, ParsesCoordinateReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 1 3.25\n"
      "3 3 4.0\n");
  const CooMatrix coo = read_matrix_market(in);
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  const DenseMatrix d = DenseMatrix::from_csr(csr);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(d.at(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 3.25);
  EXPECT_DOUBLE_EQ(d.at(2, 2), 4.0);
}

TEST(Mmio, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 1 5.0\n");
  const CsrMatrix csr = CsrMatrix::from_coo(read_matrix_market(in));
  EXPECT_EQ(csr.nnz(), 3);  // (1,1), (2,1), (1,2)
  EXPECT_TRUE(csr.is_symmetric());
}

TEST(Mmio, ExpandsSkewSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 5.0\n");
  const CsrMatrix csr = CsrMatrix::from_coo(read_matrix_market(in));
  const DenseMatrix d = DenseMatrix::from_csr(csr);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), -5.0);
}

TEST(Mmio, PatternGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const CsrMatrix csr = CsrMatrix::from_coo(read_matrix_market(in));
  EXPECT_DOUBLE_EQ(csr.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(csr.values()[1], 1.0);
}

TEST(Mmio, ParsesArrayFormat) {
  // Column-major dense 2x2: [1 3; 2 4].
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n2.0\n3.0\n4.0\n");
  const CsrMatrix csr = CsrMatrix::from_coo(read_matrix_market(in));
  const DenseMatrix d = DenseMatrix::from_csr(csr);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.at(1, 1), 4.0);
}

TEST(Mmio, RoundTripsThroughWriter) {
  const CsrMatrix a = gen::stencil_2d_5pt(7, 7);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  const CsrMatrix b = CsrMatrix::from_coo(read_matrix_market(in));
  EXPECT_TRUE(a.equals(b));
}

TEST(Mmio, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket nope\n1 1 0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsUnsupportedField) {
  std::istringstream in("%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsTruncatedData) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST(Mmio, ErrorMentionsLineNumber) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "oops\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW((void)read_matrix_market_file("/nonexistent/foo.mtx"),
               std::runtime_error);
}

TEST(Mmio, CaseInsensitiveBanner) {
  std::istringstream in(
      "%%matrixmarket MATRIX Coordinate REAL General\n"
      "1 1 1\n"
      "1 1 2.0\n");
  const CooMatrix coo = read_matrix_market(in);
  EXPECT_EQ(coo.nnz(), 1u);
}

TEST(Mmio, SumsDuplicateEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 2\n"
      "1 1 1.0\n"
      "1 1 2.0\n");
  const CooMatrix coo = read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 1u);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 3.0);
}

}  // namespace
}  // namespace spmvopt
