#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "solvers/preconditioner.hpp"

namespace spmvopt::solvers {
namespace {

std::vector<value_t> rhs_for(const CsrMatrix& a, std::vector<value_t>& x_true) {
  x_true = gen::test_vector(a.ncols(), 31);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);
  return b;
}

TEST(Preconditioner, IdentityIsCopy) {
  IdentityPreconditioner m(3);
  const std::vector<value_t> r{1.0, -2.0, 3.0};
  std::vector<value_t> z(3);
  m.apply(r, z);
  EXPECT_EQ(z, r);
}

TEST(Preconditioner, JacobiDividesByDiagonal) {
  const CsrMatrix a = gen::diagonal(4, 2.0);
  JacobiPreconditioner m(a);
  const std::vector<value_t> r{2.0, 4.0, 6.0, 8.0};
  std::vector<value_t> z(4);
  m.apply(r, z);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(z[i], r[i] / 2.0);
}

TEST(Preconditioner, JacobiRejectsZeroDiagonal) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.0);  // row 0 has no diagonal entry
  coo.add(1, 1, 1.0);
  coo.compress();
  EXPECT_THROW(JacobiPreconditioner(CsrMatrix::from_coo(coo)),
               std::invalid_argument);
}

TEST(Preconditioner, SsorOnDiagonalMatrixIsExact) {
  // For A = D the SSOR application must be exactly D^{-1} r (ω = 1).
  const CsrMatrix a = gen::diagonal(5, 4.0);
  SsorPreconditioner m(a, 1.0);
  const std::vector<value_t> r{4.0, 8.0, 12.0, 16.0, 20.0};
  std::vector<value_t> z(5);
  m.apply(r, z);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(z[i], r[i] / 4.0, 1e-12);
}

TEST(Preconditioner, SsorRejectsBadOmega) {
  const CsrMatrix a = gen::diagonal(3);
  EXPECT_THROW(SsorPreconditioner(a, 0.0), std::invalid_argument);
  EXPECT_THROW(SsorPreconditioner(a, 2.0), std::invalid_argument);
}

TEST(Preconditioner, ApplySizeChecked) {
  JacobiPreconditioner m(gen::diagonal(4));
  std::vector<value_t> r(3), z(4);
  EXPECT_THROW(m.apply(r, z), std::invalid_argument);
}

TEST(Pcg, MatchesCgWithIdentity) {
  const CsrMatrix a = gen::stencil_2d_5pt(15, 15);
  std::vector<value_t> x_true;
  const auto b = rhs_for(a, x_true);
  const auto op = LinearOperator::from_csr(a);

  std::vector<value_t> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto plain = cg(op, b, x1);
  const auto pre = pcg(op, IdentityPreconditioner(a.nrows()), b, x2);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pre.converged);
  EXPECT_EQ(pre.iterations, plain.iterations);  // identical trajectory
}

TEST(Pcg, JacobiReducesIterationsOnScaledProblem) {
  // Symmetrically scaled 1-D Laplacian A' = S A S with s_i spanning three
  // orders of magnitude: still SPD, but badly conditioned in a way that
  // diagonal (Jacobi) preconditioning largely undoes.
  const index_t n = 400;
  auto s = [&](index_t i) {
    return std::pow(10.0, 3.0 * static_cast<double>(i) / n);
  };
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0 * s(i) * s(i));
    if (i > 0) coo.add(i, i - 1, -1.0 * s(i) * s(i - 1));
    if (i < n - 1) coo.add(i, i + 1, -1.0 * s(i) * s(i + 1));
  }
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  std::vector<value_t> x_true;
  const auto b = rhs_for(a, x_true);
  const auto op = LinearOperator::from_csr(a);

  std::vector<value_t> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto plain = cg(op, b, x1);
  const auto jacobi = pcg(op, JacobiPreconditioner(a), b, x2);
  ASSERT_TRUE(jacobi.converged);
  EXPECT_LT(jacobi.iterations, plain.iterations);
  for (std::size_t i = 0; i < x2.size(); ++i)
    EXPECT_NEAR(x2[i], x_true[i], 1e-4 * std::abs(x_true[i]) + 1e-6);
}

TEST(Pcg, SsorReducesIterationsOnPoisson) {
  const CsrMatrix a = gen::stencil_2d_5pt(30, 30);
  std::vector<value_t> x_true;
  const auto b = rhs_for(a, x_true);
  const auto op = LinearOperator::from_csr(a);

  std::vector<value_t> x1(b.size(), 0.0), x2(b.size(), 0.0);
  const auto plain = cg(op, b, x1);
  const auto ssor = pcg(op, SsorPreconditioner(a, 1.5), b, x2);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(ssor.converged);
  // The §IV-D point: preconditioning cuts the iteration count sharply.
  EXPECT_LT(ssor.iterations, plain.iterations / 2);
  for (std::size_t i = 0; i < x2.size(); ++i)
    EXPECT_NEAR(x2[i], x_true[i], 1e-5);
}

TEST(Pcg, ValidatesSizes) {
  const CsrMatrix a = gen::stencil_2d_5pt(4, 4);
  const auto op = LinearOperator::from_csr(a);
  IdentityPreconditioner wrong(7);
  std::vector<value_t> b(16, 1.0), x(16, 0.0);
  EXPECT_THROW((void)pcg(op, wrong, b, x), std::invalid_argument);
}

TEST(Pcg, ZeroRhs) {
  const CsrMatrix a = gen::stencil_2d_5pt(4, 4);
  const auto op = LinearOperator::from_csr(a);
  std::vector<value_t> b(16, 0.0), x(16, 5.0);
  const auto r = pcg(op, JacobiPreconditioner(a), b, x);
  EXPECT_TRUE(r.converged);
  for (value_t v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace spmvopt::solvers
