// The persistent execution engine (src/engine/) and its topology probe.
//
// Correctness story: an engine-bound OptimizedSpmv must agree with the ULP
// oracle for every enumerated plan at every team size — the same bar the
// differential runner holds the composed kernels to.  Placement story: the
// sysfs probe must parse real trees, reject junk, and fall back to the
// single-node topology whenever sysfs is absent (containers, non-Linux).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "robust/fault_inject.hpp"
#include "spmvopt/spmvopt.hpp"

namespace spmvopt {
namespace {

using engine::EngineConfig;
using engine::ExecutionEngine;

// ---------------------------------------------------------------- topology

TEST(Topology, ParseCpulist) {
  const auto one = parse_cpulist("0");
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(*one, (std::vector<int>{0}));

  const auto mixed = parse_cpulist("0-3,8,10-11");
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(*mixed, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));

  // Overlaps dedupe, order normalizes.
  const auto overlap = parse_cpulist("4-6,5,2");
  ASSERT_TRUE(overlap.has_value());
  EXPECT_EQ(*overlap, (std::vector<int>{2, 4, 5, 6}));

  EXPECT_FALSE(parse_cpulist("").has_value());
  EXPECT_FALSE(parse_cpulist("a-b").has_value());
  EXPECT_FALSE(parse_cpulist("3-1").has_value());   // descending range
  EXPECT_FALSE(parse_cpulist("1,,2").has_value());
  EXPECT_FALSE(parse_cpulist("1,").has_value());    // trailing comma
  EXPECT_FALSE(parse_cpulist("0-70000").has_value());  // implausible width
}

TEST(Topology, AbsentSysfsFallsBackToSingleNode) {
  const Topology t = probe_topology("/nonexistent/sysfs/root");
  EXPECT_FALSE(t.from_sysfs);
  ASSERT_EQ(t.num_nodes(), 1);
  EXPECT_GE(t.logical_cpus, 1);
  EXPECT_EQ(static_cast<int>(t.nodes[0].cpus.size()), t.logical_cpus);
}

/// A fake two-node sysfs tree under a temp dir.
class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = std::filesystem::temp_directory_path() /
            ("spmvopt_topo_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  ~FakeSysfs() { std::filesystem::remove_all(root_); }

  void write(const std::string& rel, const std::string& content) const {
    const auto path = root_ / rel;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream(path) << content << "\n";
  }
  [[nodiscard]] std::string path() const { return root_.string(); }

 private:
  std::filesystem::path root_;
};

TEST(Topology, ProbesFakeTwoNodeTree) {
  FakeSysfs fs;
  fs.write("devices/system/node/online", "0-1");
  fs.write("devices/system/node/node0/cpulist", "0-3");
  fs.write("devices/system/node/node1/cpulist", "4-7");
  const Topology t = probe_topology(fs.path());
  EXPECT_TRUE(t.from_sysfs);
  ASSERT_EQ(t.num_nodes(), 2);
  EXPECT_EQ(t.logical_cpus, 8);
  EXPECT_EQ(t.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
}

TEST(Topology, MemoryOnlyNodeIsSkippedNotFatal) {
  FakeSysfs fs;
  fs.write("devices/system/node/online", "0,2");
  fs.write("devices/system/node/node0/cpulist", "0-1");
  fs.write("devices/system/node/node2/cpulist", "");  // CXL-style, no CPUs
  const Topology t = probe_topology(fs.path());
  // The empty cpulist line parses as junk -> full fallback is also
  // acceptable; what must NOT happen is a node with zero CPUs.
  for (const NumaNode& n : t.nodes) EXPECT_FALSE(n.cpus.empty());
  EXPECT_GE(t.logical_cpus, 1);
}

TEST(Topology, MalformedOnlineFileFallsBack) {
  FakeSysfs fs;
  fs.write("devices/system/node/online", "garbage");
  const Topology t = probe_topology(fs.path());
  EXPECT_FALSE(t.from_sysfs);
  ASSERT_GE(t.num_nodes(), 1);
}

TEST(Topology, PinPolicyNamesRoundTrip) {
  for (PinPolicy p :
       {PinPolicy::None, PinPolicy::Compact, PinPolicy::Scatter}) {
    const auto back = parse_pin_policy(pin_policy_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(parse_pin_policy("spread").has_value());
}

TEST(Topology, PinCpusCompactAndScatter) {
  Topology t;
  t.nodes = {{0, {0, 1, 2, 3}}, {1, {4, 5, 6, 7}}};
  t.logical_cpus = 8;

  EXPECT_TRUE(pin_cpus(t, PinPolicy::None, 4).empty());

  // Compact fills node 0 before touching node 1.
  EXPECT_EQ(pin_cpus(t, PinPolicy::Compact, 6),
            (std::vector<int>{0, 1, 2, 3, 4, 5}));
  // Scatter alternates nodes.
  EXPECT_EQ(pin_cpus(t, PinPolicy::Scatter, 6),
            (std::vector<int>{0, 4, 1, 5, 2, 6}));
  // Oversubscription wraps instead of failing.
  EXPECT_EQ(pin_cpus(t, PinPolicy::Compact, 10).size(), 10u);
  EXPECT_EQ(pin_cpus(t, PinPolicy::Compact, 10)[8], 0);
}

// ------------------------------------------------------------------ engine

TEST(Engine, EveryMemberRunsEveryDispatch) {
  ExecutionEngine eng({.nthreads = 4, .pin = PinPolicy::None});
  EXPECT_EQ(eng.nthreads(), 4);
  std::vector<std::atomic<int>> hits(4);
  for (int round = 0; round < 100; ++round)
    eng.parallel([&hits](int tid, int nt) {
      ASSERT_EQ(nt, 4);
      hits[static_cast<std::size_t>(tid)].fetch_add(1);
    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 100);
  EXPECT_EQ(eng.dispatch_count(), 100u);
}

TEST(Engine, SingleThreadDegeneratesToDirectCall) {
  ExecutionEngine eng({.nthreads = 1, .pin = PinPolicy::None});
  int calls = 0;
  eng.parallel([&calls](int tid, int nt) {
    EXPECT_EQ(tid, 0);
    EXPECT_EQ(nt, 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Engine, TeamBarrierOrdersPhases) {
  ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  std::vector<int> phase1(3, 0);
  std::atomic<int> phase2_sum{0};
  eng.parallel([&](int tid, int) {
    phase1[static_cast<std::size_t>(tid)] = tid + 1;
    eng.team_barrier();
    // After the barrier every member sees every phase-1 write.
    int s = 0;
    for (int v : phase1) s += v;
    phase2_sum.fetch_add(s);
    eng.team_barrier();
  });
  EXPECT_EQ(phase2_sum.load(), 3 * (1 + 2 + 3));
}

TEST(Engine, CompactPinningPinsWholeTeamOnLinux) {
  ExecutionEngine eng({.nthreads = 2, .pin = PinPolicy::Compact});
#if defined(__linux__)
  // In any environment with at least one schedulable CPU the pin either
  // succeeds for the whole team or is reported empty (restricted cgroup).
  if (!eng.pinned_cpus().empty()) {
    EXPECT_EQ(eng.pinned_cpus().size(), 2u);
  }
#else
  EXPECT_TRUE(eng.pinned_cpus().empty());
#endif
}

TEST(Engine, TouchedVectorIsZeroFilled) {
  ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  const auto v = eng.touched_vector(1000);
  ASSERT_EQ(v.size(), 1000u);
  for (value_t e : v) EXPECT_EQ(e, 0.0);
}

TEST(Engine, TouchedVectorWithPartitionCoversAllRows) {
  const CsrMatrix a = gen::stencil_2d_5pt(40, 40);
  ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, eng);
  const auto y = eng.touched_vector(a.nrows(), spmv.partition());
  ASSERT_EQ(static_cast<index_t>(y.size()), a.nrows());
  for (value_t e : y) EXPECT_EQ(e, 0.0);
}

// -------------------------------------------- engine-bound OptimizedSpmv

void expect_oracle_pass(const CsrMatrix& a, const optimize::OptimizedSpmv& s,
                        const std::vector<value_t>& x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), -1.0);
  s.run(x.data(), y.data());
  // Plans carry a value mode now: judge each against the oracle that rounds
  // inputs the way the plan's kernel does (DESIGN.md §13).
  const auto oracle = verify::kahan_reference(a, x, s.precision());
  const auto report =
      verify::compare(oracle, y, verify::policy_for(s.precision()));
  EXPECT_TRUE(report.pass()) << report.to_string();
}

TEST(Engine, EveryPlanMatchesOracleAcrossTeamSizes) {
  for (const auto& entry : gen::test_suite()) {
    SCOPED_TRACE(entry.name);
    const CsrMatrix a = entry.make();
    const std::vector<value_t> x = gen::test_vector(a.ncols());
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ExecutionEngine eng({.nthreads = threads, .pin = PinPolicy::None});
      for (const auto& plan : optimize::enumerate_plans(a)) {
        SCOPED_TRACE(plan.to_string());
        expect_oracle_pass(a, optimize::OptimizedSpmv::create(a, plan, eng),
                           x);
      }
    }
  }
}

TEST(Engine, OneTeamServesTwoMatricesBackToBack) {
  ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  const CsrMatrix a = gen::stencil_3d_7pt(12, 12, 12);
  const CsrMatrix b = gen::random_uniform(2000, 9, 7);
  const auto sa = optimize::OptimizedSpmv::create(a, {}, eng);
  const auto sb = optimize::OptimizedSpmv::create(b, {}, eng);
  const std::vector<value_t> xa = gen::test_vector(a.ncols());
  const std::vector<value_t> xb = gen::test_vector(b.ncols());
  const auto before = eng.dispatch_count();
  // Interleave: the team context-switches between bound matrices freely.
  for (int round = 0; round < 3; ++round) {
    expect_oracle_pass(a, sa, xa);
    expect_oracle_pass(b, sb, xb);
  }
  EXPECT_EQ(eng.dispatch_count(), before + 6);
}

TEST(Engine, PlacementStatsReportTeamAndBytes) {
  const CsrMatrix a = gen::stencil_3d_7pt(16, 16, 16);
  ExecutionEngine eng({.nthreads = 2, .pin = PinPolicy::None});
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, eng);
  const auto p = spmv.placement();
  EXPECT_TRUE(p.engine_bound);
  EXPECT_EQ(p.team_size, 2);
  EXPECT_TRUE(p.numa_materialized);  // plain CSR path re-materializes
  EXPECT_GT(p.materialized_bytes, 0u);
  EXPECT_GE(p.numa_nodes, 1);

  const auto plain = optimize::OptimizedSpmv::create(a, {}, 2);
  EXPECT_FALSE(plain.placement().engine_bound);
}

TEST(Engine, RunManyMatchesPerRhsRuns) {
  const CsrMatrix a = gen::random_uniform(1500, 11, 5);
  ExecutionEngine eng({.nthreads = 3, .pin = PinPolicy::None});
  for (const optimize::Plan& plan :
       {optimize::Plan{}, [] {
          optimize::Plan p;
          p.sched = kernels::Sched::Auto;
          p.split_long_rows = true;
          return p;
        }()}) {
    SCOPED_TRACE(plan.to_string());
    const auto spmv = optimize::OptimizedSpmv::create(a, plan, eng);
    constexpr int kRhs = 4;
    const std::size_t n = static_cast<std::size_t>(a.ncols());
    const std::size_t m = static_cast<std::size_t>(a.nrows());
    std::vector<value_t> X(n * kRhs), Y(m * kRhs, -1.0);
    for (std::size_t i = 0; i < X.size(); ++i)
      X[i] = 0.125 * static_cast<value_t>((i * 2654435761u) % 97) - 6.0;
    spmv.run_many(X.data(), Y.data(), kRhs);
    for (int r = 0; r < kRhs; ++r) {
      SCOPED_TRACE("rhs=" + std::to_string(r));
      const auto report = verify::check_spmv(
          a, std::span<const value_t>(X.data() + n * r, n),
          std::span<const value_t>(Y.data() + m * r, m));
      EXPECT_TRUE(report.pass()) << report.to_string();
    }
  }
}

TEST(Engine, RecycleRespawnsTheTeamAndKeepsAnswersCorrect) {
  // The server's self-healing escalation: a recycle joins the old worker
  // team and spawns (and re-pins) a fresh one.  Dispatches before and after
  // must both match the oracle — a recycle is invisible to correctness.
  const CsrMatrix a = gen::random_uniform(300, 8, 3);
  ExecutionEngine eng({.nthreads = 2, .pin = PinPolicy::None});
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, eng);
  const auto x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  spmv.run(x.data(), y.data());
  EXPECT_TRUE(verify::check_spmv(a, x, y).pass());

  const auto before = eng.dispatch_count();
  ASSERT_TRUE(eng.recycle());
  EXPECT_EQ(eng.recycle_count(), 1u);
  EXPECT_EQ(eng.nthreads(), 2);

  std::fill(y.begin(), y.end(), -1.0);
  spmv.run(x.data(), y.data());
  EXPECT_TRUE(verify::check_spmv(a, x, y).pass());
  EXPECT_GT(eng.dispatch_count(), before);
}

TEST(Engine, VetoedRecycleKeepsTheOldTeamServing) {
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  const CsrMatrix a = gen::random_uniform(300, 8, 5);
  ExecutionEngine eng({.nthreads = 2, .pin = PinPolicy::None});
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, eng);

  robust::fault_arm("engine.team_respawn");
  EXPECT_FALSE(eng.recycle());
  robust::fault_disarm_all();
  EXPECT_EQ(eng.recycle_count(), 0u);

  // The veto fired before teardown: the previous team keeps serving.
  const auto x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  spmv.run(x.data(), y.data());
  EXPECT_TRUE(verify::check_spmv(a, x, y).pass());
}

TEST(Engine, CgRoutesThroughEngineAndConverges) {
  const CsrMatrix a = gen::stencil_2d_5pt(24, 24);  // SPD Poisson
  ExecutionEngine eng({.nthreads = 2, .pin = PinPolicy::None});
  const auto spmv = optimize::OptimizedSpmv::create(a, {}, eng);
  const auto op = solvers::LinearOperator::from_optimized(spmv);

  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()), 1.0);
  std::vector<value_t> x(b.size(), 0.0);
  const auto before = eng.dispatch_count();
  const auto res = solvers::cg(op, b, x, {.max_iterations = 500});
  EXPECT_TRUE(res.converged);
  // Every CG matvec is one engine dispatch (plus the initial residual).
  EXPECT_GE(eng.dispatch_count() - before,
            static_cast<std::uint64_t>(res.iterations));

  // Same system solved without the engine agrees.
  std::vector<value_t> x_ref(b.size(), 0.0);
  const auto ref = solvers::cg(solvers::LinearOperator::from_csr(a), b, x_ref,
                               {.max_iterations = 500});
  ASSERT_TRUE(ref.converged);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_ref[i], 1e-6 * std::max(1.0, std::abs(x_ref[i])));
}

}  // namespace
}  // namespace spmvopt
