#include <gtest/gtest.h>

#include "ml/metrics.hpp"

namespace spmvopt::ml {
namespace {

TEST(Metrics, ExactMatchRequiresEquality) {
  EXPECT_TRUE(exact_match({1, 0, 1}, {1, 0, 1}));
  EXPECT_FALSE(exact_match({1, 0, 1}, {1, 0, 0}));
  EXPECT_TRUE(exact_match({0, 0, 0}, {0, 0, 0}));
}

TEST(Metrics, PartialMatchNeedsOneSharedClass) {
  EXPECT_TRUE(partial_match({1, 0, 1}, {1, 1, 0}));   // shares class 0
  EXPECT_FALSE(partial_match({0, 1, 0}, {1, 0, 1}));  // disjoint
  EXPECT_TRUE(partial_match({1, 1, 1}, {0, 0, 1}));
}

TEST(Metrics, PartialMatchEmptyTruth) {
  // Dummy class: empty truth matches only empty prediction.
  EXPECT_TRUE(partial_match({0, 0}, {0, 0}));
  EXPECT_FALSE(partial_match({1, 0}, {0, 0}));
}

TEST(Metrics, PartialMatchEmptyPredictionNonEmptyTruth) {
  EXPECT_FALSE(partial_match({0, 0}, {1, 0}));
}

TEST(Metrics, RatiosOverBatch) {
  const std::vector<std::vector<int>> pred{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<std::vector<int>> truth{{1, 0}, {1, 0}, {1, 0}};
  // exact: sample 0 only → 1/3; partial: samples 0 and 2 → 2/3.
  EXPECT_DOUBLE_EQ(exact_match_ratio(pred, truth), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(partial_match_ratio(pred, truth), 2.0 / 3.0);
}

TEST(Metrics, PartialAlwaysGeqExact) {
  const std::vector<std::vector<int>> pred{{1, 1}, {0, 0}, {1, 0}, {0, 1}};
  const std::vector<std::vector<int>> truth{{1, 0}, {0, 0}, {0, 1}, {0, 1}};
  EXPECT_GE(partial_match_ratio(pred, truth), exact_match_ratio(pred, truth));
}

TEST(Metrics, MismatchedAritiesThrow) {
  EXPECT_THROW((void)exact_match({1}, {1, 0}), std::invalid_argument);
  EXPECT_THROW((void)partial_match({1}, {1, 0}), std::invalid_argument);
  EXPECT_THROW((void)exact_match_ratio({}, {}), std::invalid_argument);
  EXPECT_THROW((void)exact_match_ratio({{1}}, {{1}, {0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace spmvopt::ml
