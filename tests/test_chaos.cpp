// Randomized chaos soak for spmvoptd (DESIGN.md §10).
//
// Concurrent tenants fire a seeded random mix of submits, runs (with and
// without deadlines), multi-vector runs, solves, cancel verbs and stats
// polls at a live SocketServer.  Invariants checked throughout:
//
//   - every reply is well-typed: the only error categories a healthy server
//     may produce here are DeadlineExceeded, Cancelled and Resource
//     (admission-control rejection) — Io/Internal/Format mean a real bug;
//   - every successful run answer matches the ULP oracle;
//   - the soak ends in a graceful drain that refuses new connections.
//
// The soak is time-boxed via SPMVOPT_CHAOS_SECONDS (default 2; the CI
// sanitizer jobs raise it).  The random streams are pure functions of a
// fixed seed and the worker index, so a failing soak replays exactly.  This
// suite carries both the `server` and `robust` labels and is the load the
// TSan shard leans on hardest.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/fingerprint.hpp"
#include "verify/oracle.hpp"

#include <unistd.h>

namespace spmvopt::server {
namespace {

namespace fs = std::filesystem;

double soak_seconds() {
  const char* env = std::getenv("SPMVOPT_CHAOS_SECONDS");
  if (env == nullptr) return 2.0;
  char* end = nullptr;
  const double s = std::strtod(env, &end);
  return (end == env || s <= 0.0) ? 2.0 : s;
}

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One pre-submitted tenant matrix the workers run against.
struct Tenant {
  CsrMatrix matrix;
  Fingerprint fp;
};

class ChaosSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = (fs::temp_directory_path() /
                    ("spmvoptd_chaos_" + std::to_string(::getpid()) + ".sock"))
                       .string();
    ServerConfig cfg;
    cfg.engine_threads = 2;
    cfg.watchdog_poll_ms = 10;  // sweep fast: more self-healing interleavings
    configure(cfg);
    core_ = std::make_unique<SpmvServer>(cfg);
    sock_ = std::make_unique<SocketServer>(*core_, socket_path_);
    auto started = sock_->start();
    ASSERT_TRUE(started.ok()) << started.error().to_string();
  }
  void TearDown() override {
    if (sock_) sock_->stop();
  }
  virtual void configure(ServerConfig&) {}

  /// The randomized soak body, shared by the single- and multi-executor
  /// suites (only the ServerConfig differs).
  void soak_and_drain();

  std::string socket_path_;
  std::unique_ptr<SpmvServer> core_;
  std::unique_ptr<SocketServer> sock_;
};

void ChaosSoak::soak_and_drain() {
  // A spread of shapes: regular, irregular, SPD (solvable), and a
  // monster-row skew heavy enough that short deadlines trip mid-kernel.
  std::vector<Tenant> tenants;
  tenants.push_back({gen::random_uniform(400, 8, 11), {}});
  tenants.push_back({gen::stencil_2d_5pt(24, 24), {}});
  tenants.push_back({gen::banded(500, 6, 8, 13), {}});
  tenants.push_back({gen::monster_row(20'000, 20'000, 6, 0, 17), {}});
  {
    auto c = Client::connect(socket_path_);
    ASSERT_TRUE(c.ok()) << c.error().to_string();
    for (auto& t : tenants) {
      auto sub = c.value().submit(t.matrix);
      ASSERT_TRUE(sub.ok()) << sub.error().to_string();
      t.fp = sub.value().fp;
    }
  }

  constexpr int kWorkers = 4;
  const auto end =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(soak_seconds()));

  std::atomic<int> failures{0};
  std::mutex failure_mu;
  std::vector<std::string> failure_notes;
  const auto note_failure = [&](const std::string& what) {
    ++failures;
    std::lock_guard lock(failure_mu);
    if (failure_notes.size() < 8) failure_notes.push_back(what);
  };
  // A reply category a healthy server may legitimately produce under this
  // load; anything else is a bug the soak exists to catch.
  const auto benign = [](ErrorCategory c) {
    return c == ErrorCategory::DeadlineExceeded ||
           c == ErrorCategory::Cancelled || c == ErrorCategory::Resource;
  };

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      auto conn = Client::connect(socket_path_);
      if (!conn.ok()) {
        note_failure("connect: " + conn.error().to_string());
        return;
      }
      Client c = std::move(conn.value());
      RetryPolicy policy;
      policy.max_attempts = 2;
      policy.base_delay_ms = 1.0;
      policy.max_delay_ms = 4.0;
      policy.seed = static_cast<std::uint64_t>(w) + 1;
      c.set_retry_policy(policy);

      std::uint64_t rng = mix64(0xC0FFEEull + static_cast<std::uint64_t>(w));
      std::uint64_t iter = 0;
      while (std::chrono::steady_clock::now() < end) {
        ++iter;
        rng = mix64(rng);
        const auto& t = tenants[rng % tenants.size()];
        CallOptions opts;
        opts.request_id = static_cast<std::uint64_t>(w + 1) * 1'000'000 + iter;

        switch (mix64(rng) % 8) {
          case 0: {  // re-submit: hot/warm ladder under contention
            auto r = c.submit(t.matrix, opts);
            if (!r.ok() && !benign(r.error().category()))
              note_failure("submit: " + r.error().to_string());
            break;
          }
          case 1: case 2: {  // plain run, oracle-checked
            const auto x = gen::test_vector(t.matrix.ncols(), rng);
            auto r = c.run(t.fp, x, opts);
            if (r.ok()) {
              if (!verify::check_spmv(t.matrix, x, r.value()).pass())
                note_failure("run answer failed the ULP oracle");
            } else if (!benign(r.error().category())) {
              note_failure("run: " + r.error().to_string());
            }
            break;
          }
          case 3: {  // deadline run: ok or a typed deadline/cancel trip
            opts.deadline_ms = 1 + static_cast<std::uint32_t>(rng % 5);
            const auto x = gen::test_vector(t.matrix.ncols(), rng);
            auto r = c.run(t.fp, x, opts);
            if (r.ok()) {
              if (!verify::check_spmv(t.matrix, x, r.value()).pass())
                note_failure("deadline run answer failed the ULP oracle");
            } else if (!benign(r.error().category())) {
              note_failure("deadline run: " + r.error().to_string());
            }
            break;
          }
          case 4: {  // multi-vector run
            constexpr int kRhs = 3;
            std::vector<value_t> X;
            for (int v = 0; v < kRhs; ++v) {
              const auto x = gen::test_vector(t.matrix.ncols(), rng + v);
              X.insert(X.end(), x.begin(), x.end());
            }
            auto r = c.run_many(t.fp, X, kRhs, opts);
            if (!r.ok() && !benign(r.error().category()))
              note_failure("run_many: " + r.error().to_string());
            break;
          }
          case 5: {  // short-budget solve: converged, stalled or tripped
            opts.deadline_ms = 2 + static_cast<std::uint32_t>(rng % 8);
            std::vector<value_t> b(
                static_cast<std::size_t>(t.matrix.nrows()), 1.0);
            auto r = c.solve(t.fp, SolveMethod::Cg, b, 40, 1e-10, opts);
            if (!r.ok() && !benign(r.error().category()))
              note_failure("solve: " + r.error().to_string());
            break;
          }
          case 6: {  // cancel a random id: mostly misses, sometimes lands
            auto r = c.cancel(1'000'000 + mix64(rng) % (kWorkers * 2'000'000));
            if (!r.ok()) note_failure("cancel: " + r.error().to_string());
            break;
          }
          default: {  // stats poll: always answerable, always valid JSON tag
            auto r = c.stats_json();
            if (!r.ok())
              note_failure("stats: " + r.error().to_string());
            else if (r.value().find("spmvopt-server-stats/v2") ==
                     std::string::npos)
              note_failure("stats reply lost its schema tag");
            break;
          }
        }
      }
    });
  }
  for (auto& th : workers) th.join();

  if (failures.load() != 0) {
    std::string all;
    for (const auto& n : failure_notes) all += "\n  " + n;
    ADD_FAILURE() << failures.load() << " chaos failures, first few:" << all;
  }
  const ServerStats st = core_->stats();
  EXPECT_GT(st.requests, 0u);

  // The soak ends the way production does: a graceful drain that flushes,
  // stops, and refuses new connections.
  sock_->drain(1.0);
  EXPECT_FALSE(Client::connect(socket_path_).ok());
}

TEST_F(ChaosSoak, RandomizedTenantsNeverSeeAMalformedReply) {
  soak_and_drain();
}

/// The same soak against the M=4 work-stealing configuration: four executors
/// dispatching concurrently onto one shared pool, so every invariant above
/// now also covers the steal/park/cancel interleavings the serialized server
/// never produces.  This is the load the TSan shard leans on hardest for the
/// scheduler.
class ChaosSoakMultiExec : public ChaosSoak {
 protected:
  void configure(ServerConfig& cfg) override { cfg.executors = 4; }
};

TEST_F(ChaosSoakMultiExec, RandomizedTenantsNeverSeeAMalformedReply) {
  soak_and_drain();
  const ServerStats st = core_->stats();
  EXPECT_EQ(st.executors, 4);
  EXPECT_GT(st.pool_tasks, 0u);
}

}  // namespace
}  // namespace spmvopt::server
