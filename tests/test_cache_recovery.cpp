// Binary-cache corruption and auto-recovery regression tests (DESIGN.md §6):
// every corruption mode — bad magic, bad version, flipped checksum byte,
// truncated payload — must (a) be rejected by the reader with a Format
// error, (b) trigger load_csr_cached() to rebuild from the .mtx source, and
// (c) leave a valid, reloadable cache behind.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "gen/generators.hpp"
#include "robust/fault_inject.hpp"
#include "sparse/binary_io.hpp"
#include "sparse/mmio.hpp"

namespace spmvopt {
namespace {

class CacheRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    // Paths carry the pid: ctest -j runs sibling tests of this fixture in
    // separate processes concurrently, and fixed names would collide.
    const auto dir = std::filesystem::temp_directory_path();
    const std::string tag = "spmvopt_recovery." + std::to_string(::getpid());
    mtx_ = (dir / (tag + ".mtx")).string();
    cache_ = (dir / (tag + ".csrbin")).string();
    matrix_ = gen::power_law(200, 6, 2.0, 11);
    write_matrix_market_file(mtx_, matrix_);
    write_csr_binary_file(cache_, matrix_);
  }

  void TearDown() override {
    std::remove(mtx_.c_str());
    std::remove(cache_.c_str());
    std::remove((cache_ + ".tmp").c_str());
  }

  /// Overwrite `offset` in the cache file with `byte`.
  void corrupt_byte(std::size_t offset, char byte) {
    std::fstream f(cache_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(byte);
  }

  void truncate_cache(double keep_fraction) {
    const auto size = std::filesystem::file_size(cache_);
    std::filesystem::resize_file(
        cache_, static_cast<std::uintmax_t>(static_cast<double>(size) *
                                            keep_fraction));
  }

  /// The reader rejects the corrupted cache, load_csr_cached still returns
  /// the right matrix via the .mtx, and the rewritten cache then loads
  /// cleanly (and matches) without touching the recovery path again.
  void expect_recovery() {
    EXPECT_FALSE(read_csr_binary_file_checked(cache_).ok());
    bool recovered = false;
    Expected<CsrMatrix> r = load_csr_cached(mtx_, cache_, &recovered);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(recovered);
    EXPECT_TRUE(r.value().equals(matrix_));

    Expected<CsrMatrix> again = load_csr_cached(mtx_, cache_, &recovered);
    ASSERT_TRUE(again.ok()) << again.error().to_string();
    EXPECT_FALSE(recovered) << "rewritten cache was not used";
    EXPECT_TRUE(again.value().equals(matrix_));
  }

  std::string mtx_;
  std::string cache_;
  CsrMatrix matrix_;
};

TEST_F(CacheRecovery, CleanCacheLoadsWithoutRecovery) {
  bool recovered = true;
  Expected<CsrMatrix> r = load_csr_cached(mtx_, cache_, &recovered);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_FALSE(recovered);
  EXPECT_TRUE(r.value().equals(matrix_));
}

TEST_F(CacheRecovery, MissingCacheIsRebuilt) {
  std::remove(cache_.c_str());
  bool recovered = false;
  Expected<CsrMatrix> r = load_csr_cached(mtx_, cache_, &recovered);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(recovered);
  EXPECT_TRUE(std::filesystem::exists(cache_));
  EXPECT_TRUE(read_csr_binary_file_checked(cache_).ok());
}

TEST_F(CacheRecovery, BadMagic) {
  corrupt_byte(0, 'X');
  expect_recovery();
}

TEST_F(CacheRecovery, BadVersion) {
  corrupt_byte(8, 0x7F);  // version u32 follows the 8-byte magic
  expect_recovery();
}

TEST_F(CacheRecovery, FlippedChecksumByte) {
  corrupt_byte(8 + 4 + 3 * 8, 0x5A);  // crc field follows magic+version+dims
  expect_recovery();
}

TEST_F(CacheRecovery, FlippedPayloadByte) {
  // Past the header: detected by the CRC, not by the length check.
  const auto size = std::filesystem::file_size(cache_);
  corrupt_byte(static_cast<std::size_t>(size) - 5, 0x5A);
  expect_recovery();
}

TEST_F(CacheRecovery, TruncatedPayload) {
  truncate_cache(0.6);
  expect_recovery();
}

TEST_F(CacheRecovery, TruncatedToBareHeader) {
  truncate_cache(0.0);
  expect_recovery();
}

TEST_F(CacheRecovery, UnreadableSourceFailsWithBothContexts) {
  truncate_cache(0.5);
  std::remove(mtx_.c_str());
  Expected<CsrMatrix> r = load_csr_cached(mtx_, cache_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Io);
  // The context chain names the cache being recovered.
  bool mentions_cache = false;
  for (const std::string& frame : r.error().context())
    if (frame.find(cache_) != std::string::npos) mentions_cache = true;
  EXPECT_TRUE(mentions_cache) << r.error().to_string();
}

TEST_F(CacheRecovery, PersistentCorruptionSurfacesAfterOneRewrite) {
  // Recovery is bounded: when the rewritten cache *still* fails to read back
  // (a lying medium), load_csr_cached must return the typed verify error
  // instead of silently re-running recovery on every load.  The bit-flip
  // fault fires inside the first read that reaches the payload — the
  // corrupt-magic initial read fails at the header, so the flip lands in
  // the post-rewrite verification pass.
  if (!robust::fault_injection_enabled())
    GTEST_SKIP() << "built without SPMVOPT_FAULT_INJECTION";
  corrupt_byte(0, 'X');
  robust::fault_arm("binary_io.bit_flip");
  Expected<CsrMatrix> r = load_csr_cached(mtx_, cache_);
  robust::fault_disarm_all();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
  bool bounded = false;
  for (const std::string& frame : r.error().context())
    if (frame.find("one rewrite attempt") != std::string::npos) bounded = true;
  EXPECT_TRUE(bounded) << r.error().to_string();

  // The *next* load sees the (healthy) rewritten cache and needs no
  // recovery: the bound is per-load, not a poisoned state.
  bool recovered = true;
  Expected<CsrMatrix> again = load_csr_cached(mtx_, cache_, &recovered);
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_FALSE(recovered);
  EXPECT_TRUE(again.value().equals(matrix_));
}

TEST_F(CacheRecovery, ReadOnlyCacheDirStaysBestEffort) {
  // A rewrite the filesystem refuses must not fail the load: the matrix is
  // fine, only the cache update is lost.
  if (::geteuid() == 0) GTEST_SKIP() << "root ignores directory permissions";
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("spmvopt_recovery_ro." + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string ro_cache = (dir / "cache.csrbin").string();
  fs::permissions(dir, fs::perms::owner_read | fs::perms::owner_exec);
  bool recovered = false;
  Expected<CsrMatrix> r = load_csr_cached(mtx_, ro_cache, &recovered);
  fs::permissions(dir, fs::perms::owner_all);
  fs::remove_all(dir);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(recovered);
  EXPECT_TRUE(r.value().equals(matrix_));
}

TEST_F(CacheRecovery, AtomicWriteLeavesNoTmpFile) {
  ASSERT_TRUE(write_csr_binary_file_checked(cache_, matrix_).ok());
  EXPECT_FALSE(std::filesystem::exists(cache_ + ".tmp"));
  EXPECT_TRUE(read_csr_binary_file_checked(cache_).ok());
}

}  // namespace
}  // namespace spmvopt
