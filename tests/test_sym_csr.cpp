#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "support/rng.hpp"
#include "sparse/sym_csr.hpp"

namespace spmvopt {
namespace {

void expect_matches_full(const CsrMatrix& full, const SymCsrMatrix& sym) {
  const std::vector<value_t> x = gen::test_vector(full.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(full.nrows()));
  full.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(full.nrows()), std::nan(""));
  sym.multiply(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
  for (int threads : {1, 2, 5}) {
    std::fill(y.begin(), y.end(), std::nan(""));
    kernels::spmv_sym(sym, x.data(), y.data(), threads);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])))
          << threads << " threads";
  }
}

TEST(SymCsr, MatchesFullOnStencils) {
  for (const CsrMatrix& a :
       {gen::stencil_2d_5pt(17, 23), gen::stencil_3d_7pt(7, 8, 9),
        gen::stencil_3d_27pt(5, 6, 7)}) {
    expect_matches_full(a, SymCsrMatrix::from_symmetric_csr(a));
  }
}

TEST(SymCsr, MatchesFullOnSymmetrizedRandom) {
  // Symmetrize a random pattern: B = A + A^T.
  CooMatrix coo(400, 400);
  Xoshiro256 rng(9);
  for (int k = 0; k < 2500; ++k)
    coo.add_symmetric(static_cast<index_t>(rng.bounded(400)),
                      static_cast<index_t>(rng.bounded(400)),
                      rng.uniform(0.1, 1.0));
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  expect_matches_full(a, SymCsrMatrix::from_symmetric_csr(a));
}

TEST(SymCsr, HalvesFormatBytes) {
  const CsrMatrix a = gen::stencil_3d_7pt(12, 12, 12);
  const SymCsrMatrix sym = SymCsrMatrix::from_symmetric_csr(a);
  // Lower triangle + diagonal is just over half the full storage.
  EXPECT_LT(sym.format_bytes(), 0.62 * a.format_bytes());
  EXPECT_EQ(sym.full_nnz(), a.nnz());
}

TEST(SymCsr, RoundTripsToFull) {
  const CsrMatrix a = gen::stencil_2d_5pt(11, 13);
  const SymCsrMatrix sym = SymCsrMatrix::from_symmetric_csr(a);
  EXPECT_TRUE(sym.to_full().equals(a));
}

TEST(SymCsr, RejectsNonSymmetric) {
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0);  // no mirrored entry
  coo.add(0, 0, 1.0);
  coo.compress();
  EXPECT_THROW(
      (void)SymCsrMatrix::from_symmetric_csr(CsrMatrix::from_coo(coo)),
      std::invalid_argument);
}

TEST(SymCsr, RejectsRectangular) {
  CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.compress();
  EXPECT_THROW(
      (void)SymCsrMatrix::from_symmetric_csr(CsrMatrix::from_coo(coo)),
      std::invalid_argument);
}

TEST(SymCsr, ToleranceAllowsNearSymmetry) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0 + 1e-12);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_THROW((void)SymCsrMatrix::from_symmetric_csr(a, 0.0),
               std::invalid_argument);
  EXPECT_NO_THROW((void)SymCsrMatrix::from_symmetric_csr(a, 1e-9));
}

TEST(SymCsr, DiagonalOnlyMatrix) {
  const CsrMatrix a = gen::diagonal(50, 3.0);
  const SymCsrMatrix sym = SymCsrMatrix::from_symmetric_csr(a);
  expect_matches_full(a, sym);
}

}  // namespace
}  // namespace spmvopt
