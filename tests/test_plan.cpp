#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/generators.hpp"
#include "optimize/plan.hpp"

namespace spmvopt::optimize {
namespace {

using classify::Bottleneck;
using classify::ClassSet;
using kernels::Compute;
using kernels::Sched;

ClassSet set_of(std::initializer_list<Bottleneck> bs) {
  ClassSet s;
  for (Bottleneck b : bs) s.add(b);
  return s;
}

TEST(Plan, BaselineToString) {
  EXPECT_EQ(Plan{}.to_string(), "baseline");
  EXPECT_TRUE(Plan{}.is_baseline());
}

TEST(Plan, ToStringListsApplied) {
  Plan p;
  p.sched = Sched::Auto;
  p.prefetch = true;
  p.compute = Compute::Vector;
  EXPECT_EQ(p.to_string(), "auto+pf+vec");
}

TEST(PlanForClasses, MbGetsDeltaPlusVectorization) {
  const Plan p = plan_for_classes(set_of({Bottleneck::MB}), gen::dense(32));
  EXPECT_TRUE(p.delta);
  EXPECT_EQ(p.compute, Compute::Vector);
  EXPECT_FALSE(p.prefetch);
}

TEST(PlanForClasses, MlGetsPrefetch) {
  const Plan p =
      plan_for_classes(set_of({Bottleneck::ML}), gen::random_uniform(100, 5));
  EXPECT_TRUE(p.prefetch);
  EXPECT_FALSE(p.delta);
  EXPECT_EQ(p.compute, Compute::Scalar);
}

TEST(PlanForClasses, CmpGetsUnrollVector) {
  const Plan p = plan_for_classes(set_of({Bottleneck::CMP}), gen::dense(16));
  EXPECT_EQ(p.compute, Compute::UnrollVector);
}

TEST(PlanForClasses, ImbUnevenRowsGetsMergePath) {
  // Dense rows way above average: the merge-path kernel, ahead of long-row
  // decomposition (guaranteed rows+nnz balance on skewed structures).
  const CsrMatrix a = gen::few_dense_rows(1000, 3, 3, 800, 3);
  const Plan p = plan_for_classes(set_of({Bottleneck::IMB}), a);
  EXPECT_TRUE(p.merge_path);
  EXPECT_FALSE(p.split_long_rows);
  EXPECT_EQ(p.sched, Sched::BalancedStatic);
}

TEST(PlanForClasses, MonsterRowFixtureGetsMergePath) {
  // The 1-D-partition worst case: one row holds ~half of all nonzeros.
  const CsrMatrix a = gen::monster_row(1024, 1024, 1, 0, 3);
  const Plan p = plan_for_classes(set_of({Bottleneck::IMB}), a);
  EXPECT_TRUE(p.merge_path);
  EXPECT_EQ(p.to_string(), "merge");
}

TEST(PlanForClasses, ImbEvenRowsGetsAutoSched) {
  // Uniform row lengths: computational-unevenness branch.
  const CsrMatrix a = gen::random_uniform(500, 6, 5);
  const Plan p = plan_for_classes(set_of({Bottleneck::IMB}), a);
  EXPECT_FALSE(p.split_long_rows);
  EXPECT_FALSE(p.merge_path);
  EXPECT_EQ(p.sched, Sched::Auto);
}

TEST(PlanForClasses, JointMlImbCombines) {
  const CsrMatrix a = gen::random_uniform(500, 6, 5);
  const Plan p =
      plan_for_classes(set_of({Bottleneck::ML, Bottleneck::IMB}), a);
  EXPECT_TRUE(p.prefetch);
  EXPECT_EQ(p.sched, Sched::Auto);
}

TEST(PlanForClasses, MergeSuppressesDelta) {
  // MB + IMB with long rows: merge wins, delta dropped (the merge span walks
  // raw column indices).
  const CsrMatrix a = gen::few_dense_rows(1000, 3, 3, 800, 3);
  const Plan p =
      plan_for_classes(set_of({Bottleneck::MB, Bottleneck::IMB}), a);
  EXPECT_TRUE(p.merge_path);
  EXPECT_FALSE(p.delta);
  EXPECT_EQ(p.compute, Compute::Vector);  // MB's vectorization survives
}

TEST(PlanForClasses, EmptySetIsBaseline) {
  EXPECT_TRUE(plan_for_classes(ClassSet(), gen::dense(8)).is_baseline());
}

TEST(SinglePlans, ExactlyFivePerTableV) {
  const auto singles = single_optimization_plans();
  ASSERT_EQ(singles.size(), 5u);
  std::set<std::string> names;
  for (const Plan& p : singles) names.insert(p.to_string());
  EXPECT_EQ(names.size(), 5u);  // all distinct
  EXPECT_TRUE(names.count("delta+vec"));
  EXPECT_TRUE(names.count("pf"));
  EXPECT_TRUE(names.count("split"));
  EXPECT_TRUE(names.count("auto"));
  EXPECT_TRUE(names.count("unroll-vec"));
}

TEST(CombinedPlans, ContainsSinglesAndPairs) {
  const auto combined = combined_optimization_plans();
  // 5 singles + up to 10 pairs, minus pair-merges that collapse into another
  // candidate; must be strictly more than the singles and at most 15.
  EXPECT_GT(combined.size(), 5u);
  EXPECT_LE(combined.size(), 15u);
  // No duplicates.
  for (std::size_t i = 0; i < combined.size(); ++i)
    for (std::size_t j = i + 1; j < combined.size(); ++j)
      EXPECT_FALSE(combined[i] == combined[j]);
}

TEST(MergePlans, ResolvesConflictsTowardStronger) {
  Plan delta_vec;
  delta_vec.delta = true;
  delta_vec.compute = Compute::Vector;
  Plan unroll;
  unroll.compute = Compute::UnrollVector;
  const Plan m = merge_plans(delta_vec, unroll);
  EXPECT_TRUE(m.delta);
  EXPECT_EQ(m.compute, Compute::UnrollVector);

  Plan split;
  split.split_long_rows = true;
  const Plan m2 = merge_plans(delta_vec, split);
  EXPECT_TRUE(m2.split_long_rows);
  EXPECT_FALSE(m2.delta);  // infeasible together
}

TEST(MergePlans, MergePathSubsumesSplitAndDelta) {
  Plan merge;
  merge.merge_path = true;
  Plan delta_vec;
  delta_vec.delta = true;
  delta_vec.compute = Compute::Vector;
  const Plan m = merge_plans(merge, delta_vec);
  EXPECT_TRUE(m.merge_path);
  EXPECT_FALSE(m.delta);
  EXPECT_EQ(m.compute, Compute::Vector);

  Plan split;
  split.split_long_rows = true;
  const Plan m2 = merge_plans(split, merge);
  EXPECT_TRUE(m2.merge_path);
  EXPECT_FALSE(m2.split_long_rows);
}

TEST(PlanSerialize, MergeRoundTrips) {
  Plan p;
  p.merge_path = true;
  p.prefetch = true;
  p.compute = Compute::UnrollVector;
  const auto back = deserialize_plan(serialize_plan(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
  EXPECT_EQ(p.to_string(), "merge+pf+unroll-vec");
}

TEST(PlanSerialize, PreMergeLinesStillParse) {
  // A persisted plan line from before the merge field existed (no merge=
  // key) must keep parsing — stale caches degrade, they don't error.
  const auto p = deserialize_plan(
      "plan1 sched=auto pf=1 compute=vector delta=0 split=1 sell=0 bcsr=0 "
      "chunk=64");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->split_long_rows);
  EXPECT_FALSE(p->merge_path);
}

TEST(EnumeratePlans, AllFeasibleAndUnique) {
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);
  const auto plans = enumerate_plans(a);
  EXPECT_GT(plans.size(), 20u);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_FALSE(plans[i].delta && plans[i].split_long_rows);
    EXPECT_FALSE(plans[i].merge_path &&
                 (plans[i].delta || plans[i].split_long_rows));
    for (std::size_t j = i + 1; j < plans.size(); ++j)
      EXPECT_FALSE(plans[i] == plans[j]);
  }
}

TEST(EnumeratePlans, ContainsMergePathPlans) {
  // The oracle space sweeps merge across prefetch x compute (6 plans).
  const auto plans = enumerate_plans(gen::stencil_2d_5pt(8, 8));
  std::size_t merge_count = 0;
  for (const Plan& p : plans)
    if (p.merge_path) ++merge_count;
  EXPECT_EQ(merge_count, 6u);
}

TEST(EnumeratePlans, SkipsDeltaWhenNotEncodable) {
  // Gap > 16 bits: no delta plans.
  CooMatrix coo(1, 100000);
  coo.add(0, 0, 1.0);
  coo.add(0, 99999, 1.0);
  coo.compress();
  const auto plans = enumerate_plans(CsrMatrix::from_coo(coo));
  for (const Plan& p : plans) EXPECT_FALSE(p.delta);
}

}  // namespace
}  // namespace spmvopt::optimize
