#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "solvers/eigen.hpp"
#include "solvers/stationary.hpp"

namespace spmvopt::solvers {
namespace {

std::vector<value_t> rhs_for(const CsrMatrix& a, std::vector<value_t>& x_true) {
  x_true = gen::test_vector(a.ncols(), 17);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);
  return b;
}

TEST(Jacobi, ConvergesOnDiagonallyDominant) {
  const CsrMatrix a =
      gen::make_diagonally_dominant(gen::random_uniform(200, 5, 3), 2.0);
  std::vector<value_t> x_true;
  const auto b = rhs_for(a, x_true);
  std::vector<value_t> x(b.size(), 0.0);
  SolverOptions opt;
  opt.max_iterations = 500;
  opt.rel_tolerance = 1e-10;
  const auto r = jacobi(a, b, x, 1.0, opt);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Jacobi, RejectsZeroDiagonal) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 1, 1.0);
  coo.compress();
  std::vector<value_t> b(2, 1.0), x(2, 0.0);
  EXPECT_THROW((void)jacobi(CsrMatrix::from_coo(coo), b, x),
               std::invalid_argument);
}

TEST(Jacobi, RejectsBadOmega) {
  const CsrMatrix a = gen::diagonal(3);
  std::vector<value_t> b(3, 1.0), x(3, 0.0);
  EXPECT_THROW((void)jacobi(a, b, x, 0.0), std::invalid_argument);
  EXPECT_THROW((void)jacobi(a, b, x, 1.5), std::invalid_argument);
}

TEST(GaussSeidel, ConvergesFasterThanJacobi) {
  const CsrMatrix a = gen::stencil_2d_5pt(12, 12);
  std::vector<value_t> x_true;
  const auto b = rhs_for(a, x_true);
  SolverOptions opt;
  opt.max_iterations = 3000;
  opt.rel_tolerance = 1e-8;
  std::vector<value_t> xj(b.size(), 0.0), xg(b.size(), 0.0);
  const auto rj = jacobi(a, b, xj, 1.0, opt);
  const auto rg = gauss_seidel(a, b, xg, opt);
  ASSERT_TRUE(rj.converged);
  ASSERT_TRUE(rg.converged);
  // The textbook 2x: GS spectral radius = (Jacobi's)^2 for this class.
  EXPECT_LT(rg.iterations, rj.iterations);
  for (std::size_t i = 0; i < xg.size(); ++i)
    EXPECT_NEAR(xg[i], x_true[i], 1e-5);
}

TEST(Chebyshev, ConvergesWithLanczosBounds) {
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);
  std::vector<value_t> x_true;
  const auto b = rhs_for(a, x_true);
  const auto op = LinearOperator::from_csr(a);

  // Spectral bounds from Lanczos, padded 5% outward.
  const auto spec = lanczos_extreme(op, 60, 3);
  ASSERT_GT(spec.lambda_min, 0.0);
  std::vector<value_t> x(b.size(), 0.0);
  SolverOptions opt;
  opt.max_iterations = 2000;
  opt.rel_tolerance = 1e-9;
  const auto r = chebyshev(op, b, x, 0.95 * spec.lambda_min,
                           1.05 * spec.lambda_max, opt);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Chebyshev, BeatsJacobiOnPoisson) {
  const CsrMatrix a = gen::stencil_2d_5pt(14, 14);
  std::vector<value_t> x_true;
  const auto b = rhs_for(a, x_true);
  const auto op = LinearOperator::from_csr(a);
  const auto spec = lanczos_extreme(op, 60, 5);
  SolverOptions opt;
  opt.max_iterations = 5000;
  opt.rel_tolerance = 1e-8;
  std::vector<value_t> xc(b.size(), 0.0), xj(b.size(), 0.0);
  const auto rc = chebyshev(op, b, xc, 0.95 * spec.lambda_min,
                            1.05 * spec.lambda_max, opt, 1);
  const auto rj = jacobi(a, b, xj, 1.0, opt);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rj.converged);
  // Chebyshev needs O(sqrt(kappa)) iterations vs Jacobi's O(kappa).
  EXPECT_LT(rc.iterations * 4, rj.iterations);
}

TEST(Chebyshev, ValidatesBounds) {
  const CsrMatrix a = gen::diagonal(4, 2.0);
  const auto op = LinearOperator::from_csr(a);
  std::vector<value_t> b(4, 1.0), x(4, 0.0);
  EXPECT_THROW((void)chebyshev(op, b, x, -1.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)chebyshev(op, b, x, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)chebyshev(op, b, x, 1.0, 3.0, {}, 0),
               std::invalid_argument);
}

TEST(Stationary, ZeroRhs) {
  const CsrMatrix a = gen::stencil_2d_5pt(5, 5);
  std::vector<value_t> b(25, 0.0), x(25, 9.0);
  EXPECT_TRUE(jacobi(a, b, x).converged);
  for (value_t v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Stationary, NonConvergenceReported) {
  // Not diagonally dominant and spectral radius > 1 for Jacobi.
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 3.0);
  coo.add(1, 0, 3.0);
  coo.add(1, 1, 1.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  std::vector<value_t> b(2, 1.0), x(2, 0.0);
  SolverOptions opt;
  opt.max_iterations = 30;
  const auto r = jacobi(a, b, x, 1.0, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 30);
}

}  // namespace
}  // namespace spmvopt::solvers
