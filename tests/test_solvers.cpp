#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/generators.hpp"
#include "solvers/blas1.hpp"
#include "solvers/krylov.hpp"
#include "solvers/pagerank.hpp"

namespace spmvopt::solvers {
namespace {

std::vector<value_t> manufactured_rhs(const CsrMatrix& a,
                                      std::vector<value_t>& x_true) {
  x_true = gen::test_vector(a.ncols(), 99);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);
  return b;
}

TEST(Blas1, DotAndNorm) {
  const std::vector<value_t> a{1.0, 2.0, 3.0};
  const std::vector<value_t> b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(nrm2(std::vector<value_t>{3.0, 4.0}), 5.0);
}

TEST(Blas1, AxpyXpby) {
  std::vector<value_t> y{1.0, 1.0};
  axpy(2.0, std::vector<value_t>{1.0, 2.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  xpby(std::vector<value_t>{1.0, 1.0}, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], 3.5);
}

TEST(Blas1, SizeMismatchThrows) {
  std::vector<value_t> y{1.0};
  EXPECT_THROW((void)dot(std::vector<value_t>{1.0, 2.0}, y),
               std::invalid_argument);
  EXPECT_THROW(axpy(1.0, std::vector<value_t>{1.0, 2.0}, y),
               std::invalid_argument);
}

TEST(LinearOperator, FromCsrApplies) {
  const CsrMatrix a = gen::stencil_2d_5pt(6, 6);
  const LinearOperator op = LinearOperator::from_csr(a);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y1(static_cast<std::size_t>(a.nrows()));
  std::vector<value_t> y2(static_cast<std::size_t>(a.nrows()));
  op.apply(x, y1);
  a.multiply(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(LinearOperator, ValidatesSizes) {
  const CsrMatrix a = gen::stencil_2d_5pt(4, 4);
  const LinearOperator op = LinearOperator::from_csr(a);
  std::vector<value_t> x(3), y(16);
  EXPECT_THROW(op.apply(x, y), std::invalid_argument);
}

TEST(Cg, SolvesPoissonToTolerance) {
  const CsrMatrix a = gen::stencil_2d_5pt(20, 20);
  std::vector<value_t> x_true;
  const std::vector<value_t> b = manufactured_rhs(a, x_true);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  const SolveResult r = cg(LinearOperator::from_csr(a), b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.residual_norm, 1e-8);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = gen::stencil_2d_5pt(5, 5);
  std::vector<value_t> b(25, 0.0), x(25, 3.0);
  const SolveResult r = cg(LinearOperator::from_csr(a), b, x);
  EXPECT_TRUE(r.converged);
  for (value_t v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, ReportsNonConvergenceWithinBudget) {
  const CsrMatrix a = gen::stencil_2d_5pt(30, 30);
  std::vector<value_t> x_true;
  const std::vector<value_t> b = manufactured_rhs(a, x_true);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  SolverOptions opt;
  opt.max_iterations = 3;
  const SolveResult r = cg(LinearOperator::from_csr(a), b, x, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
  const CsrMatrix a =
      gen::make_diagonally_dominant(gen::random_uniform(300, 5, 17), 2.0);
  std::vector<value_t> x_true;
  const std::vector<value_t> b = manufactured_rhs(a, x_true);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  const SolveResult r = bicgstab(LinearOperator::from_csr(a), b, x);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  const CsrMatrix a =
      gen::make_diagonally_dominant(gen::random_uniform(200, 4, 23), 2.0);
  std::vector<value_t> x_true;
  const std::vector<value_t> b = manufactured_rhs(a, x_true);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  const SolveResult r = gmres(LinearOperator::from_csr(a), b, x, 30);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Gmres, RestartSmallerThanKrylovDimStillConverges) {
  const CsrMatrix a =
      gen::make_diagonally_dominant(gen::random_uniform(150, 4, 29), 2.0);
  std::vector<value_t> x_true;
  const std::vector<value_t> b = manufactured_rhs(a, x_true);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  const SolveResult r = gmres(LinearOperator::from_csr(a), b, x, 5);
  EXPECT_TRUE(r.converged);
}

TEST(Gmres, RejectsBadRestart) {
  const CsrMatrix a = gen::diagonal(4);
  std::vector<value_t> b(4, 1.0), x(4, 0.0);
  EXPECT_THROW((void)gmres(LinearOperator::from_csr(a), b, x, 0),
               std::invalid_argument);
}

TEST(Solvers, RejectRectangularOperator) {
  CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const LinearOperator op = LinearOperator::from_csr(a);
  std::vector<value_t> b(2, 1.0), x(2, 0.0);
  EXPECT_THROW((void)cg(op, b, x), std::invalid_argument);
}

TEST(PageRank, ScoresSumToOne) {
  const CsrMatrix g = gen::rmat(8, 6, 0.5, 0.2, 0.2, 3);
  const PageRankResult r = pagerank(g);
  EXPECT_TRUE(r.converged);
  const double total =
      std::accumulate(r.scores.begin(), r.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (value_t s : r.scores) EXPECT_GE(s, 0.0);
}

TEST(PageRank, HubGetsHighestScore) {
  // Star graph: everyone links to node 0.
  CooMatrix coo(50, 50);
  for (index_t i = 1; i < 50; ++i) coo.add(i, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.compress();
  const PageRankResult r = pagerank(CsrMatrix::from_coo(coo));
  const auto argmax = static_cast<std::size_t>(
      std::max_element(r.scores.begin(), r.scores.end()) - r.scores.begin());
  EXPECT_EQ(argmax, 0u);
}

TEST(PageRank, HandlesDanglingNodes) {
  // Node 2 has no out-links; mass must be redistributed, sum preserved.
  CooMatrix coo(3, 3);
  coo.add(0, 1, 1.0);
  coo.add(1, 2, 1.0);
  coo.compress();
  const PageRankResult r = pagerank(CsrMatrix::from_coo(coo));
  const double total = std::accumulate(r.scores.begin(), r.scores.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, TransitionMatrixIsColumnStochastic) {
  const CsrMatrix g = gen::rmat(6, 4, 0.5, 0.2, 0.2, 5);
  const CsrMatrix p = transition_matrix(g);
  // Column sums of P = row sums of P^T: each non-dangling source column
  // sums to 1.  P[dst][src], so accumulate per colind.
  std::vector<double> colsum(static_cast<std::size_t>(p.ncols()), 0.0);
  for (index_t i = 0; i < p.nrows(); ++i)
    for (index_t j = p.rowptr()[i]; j < p.rowptr()[i + 1]; ++j)
      colsum[static_cast<std::size_t>(p.colind()[j])] += p.values()[j];
  for (index_t s = 0; s < g.nrows(); ++s) {
    if (g.row_nnz(s) == 0) continue;
    EXPECT_NEAR(colsum[static_cast<std::size_t>(s)], 1.0, 1e-9);
  }
}

TEST(PageRank, RejectsBadDamping) {
  const CsrMatrix g = gen::diagonal(4);
  PageRankOptions opt;
  opt.damping = 1.5;
  EXPECT_THROW((void)pagerank(g, opt), std::invalid_argument);
}

}  // namespace
}  // namespace spmvopt::solvers
