// The ULP comparator and Kahan oracle of src/verify/oracle.hpp.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/generators.hpp"
#include "sparse/coo.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracle.hpp"

namespace spmvopt::verify {
namespace {

TEST(UlpDistance, IdenticalValuesAreZero) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(0.0, 0.0), 0u);
  EXPECT_EQ(ulp_distance(-3.5e100, -3.5e100), 0u);
  EXPECT_EQ(ulp_distance(std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::infinity()),
            0u);
}

TEST(UlpDistance, AdjacentDoublesAreOne) {
  const double a = 1.0;
  const double b = std::nextafter(a, 2.0);
  EXPECT_EQ(ulp_distance(a, b), 1u);
  EXPECT_EQ(ulp_distance(b, a), 1u);
  // Across a power-of-two boundary the spacing changes but adjacency holds.
  const double c = 2.0;
  EXPECT_EQ(ulp_distance(c, std::nextafter(c, 0.0)), 1u);
}

TEST(UlpDistance, SignedZerosCoincide) {
  EXPECT_EQ(ulp_distance(-0.0, 0.0), 0u);
  // The smallest positive and negative denormals straddle zero: 2 ULPs.
  const double denorm = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(ulp_distance(-denorm, denorm), 2u);
}

TEST(UlpDistance, DenormalsAreAdjacentToZero) {
  EXPECT_EQ(ulp_distance(0.0, std::numeric_limits<double>::denorm_min()), 1u);
}

TEST(UlpDistance, NanAndInfMismatchAreMaximal) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ulp_distance(nan, 1.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ulp_distance(nan, nan), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ulp_distance(inf, 1.0), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(ulp_distance(inf, -inf), std::numeric_limits<std::uint64_t>::max());
}

TEST(UlpDistance, OrderedAcrossSignBoundary) {
  // -1 to +1 spans the full denormal+normal range twice; must not overflow
  // into a tiny value.
  EXPECT_GT(ulp_distance(-1.0, 1.0), ulp_distance(0.5, 1.0));
}

TEST(KahanOracle, MatchesExactArithmeticOnCancellation) {
  // Row 0 of cancellation-row sums 1e16 + 1 - 1e16 = 1 exactly under Kahan
  // (the naive left-to-right order yields 0 or 2 depending on grouping).
  CooMatrix coo(1, 3);
  coo.add(0, 0, 1e16);
  coo.add(0, 1, 1.0);
  coo.add(0, 2, -1e16);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<value_t> x{1.0, 1.0, 1.0};
  const Oracle o = kahan_reference(a, x);
  EXPECT_DOUBLE_EQ(o.y[0], 1.0);
  // The bound must cover naive summation's worst case for this row.
  EXPECT_GT(o.row_bound[0], 0.0);
  EXPECT_GE(o.row_bound[0],
            3 * std::numeric_limits<double>::epsilon() * 2e16 * 0.9);
}

TEST(KahanOracle, EmptyRowsAreExactZeroWithZeroBound) {
  CooMatrix coo(3, 3);
  coo.add(1, 1, 4.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<value_t> x{1.0, 2.0, 3.0};
  const Oracle o = kahan_reference(a, x);
  EXPECT_EQ(o.y[0], 0.0);
  EXPECT_EQ(o.row_bound[0], 0.0);
  EXPECT_DOUBLE_EQ(o.y[1], 8.0);
  EXPECT_EQ(o.y[2], 0.0);
}

TEST(KahanOracle, RejectsWrongVectorSize) {
  const CsrMatrix a = gen::dense(4);
  std::vector<value_t> x(3, 1.0);
  EXPECT_THROW((void)kahan_reference(a, x), std::invalid_argument);
}

TEST(Compare, PassesBitIdenticalResult) {
  const CsrMatrix a = gen::stencil_2d_5pt(8, 8);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  const Oracle o = kahan_reference(a, x);
  const CompareReport r = compare(o, o.y, UlpPolicy{0, 0.0});
  EXPECT_TRUE(r.pass());
  EXPECT_EQ(r.worst_ulps, 0u);
}

TEST(Compare, AcceptsReorderingWithinPolicy) {
  // A serial left-to-right sum differs from Kahan by at most the bound.
  const CsrMatrix a = gen::banded(200, 20, 12, 3);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  const Oracle o = kahan_reference(a, x);
  std::vector<value_t> naive(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, naive);
  EXPECT_TRUE(compare(o, naive, UlpPolicy{}).pass());
}

TEST(Compare, FlagsWrongValueWithRowAttribution) {
  const CsrMatrix a = gen::dense(16);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  const Oracle o = kahan_reference(a, x);
  std::vector<value_t> y = o.y;
  y[7] *= 1.001;  // far outside any legitimate reordering error
  const CompareReport r = compare(o, y, UlpPolicy{});
  ASSERT_FALSE(r.pass());
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].row, 7);
  EXPECT_EQ(r.worst_row, 7);
  EXPECT_NE(r.to_string().find("row 7"), std::string::npos);
}

TEST(Compare, FlagsNaN) {
  const CsrMatrix a = gen::dense(4);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  const Oracle o = kahan_reference(a, x);
  std::vector<value_t> y = o.y;
  y[2] = std::numeric_limits<value_t>::quiet_NaN();
  const CompareReport r = compare(o, y, UlpPolicy{});
  ASSERT_FALSE(r.pass());
  EXPECT_EQ(r.failures[0].row, 2);
}

TEST(Compare, FlagsSkippedRowOnEmptyRowMatrix) {
  // A kernel that never writes empty rows leaves poison; the comparator must
  // treat that as a divergence, not a pass.
  CooMatrix coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(3, 3, 1.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<value_t> x(4, 1.0);
  const Oracle o = kahan_reference(a, x);
  std::vector<value_t> y = o.y;
  y[1] = std::numeric_limits<value_t>::quiet_NaN();  // "skipped" empty row
  EXPECT_FALSE(compare(o, y, UlpPolicy{}).pass());
}

TEST(Compare, BoundArmDoesNotAdmitWrongIndexBugs) {
  // Reading x[j+1] instead of x[j] lands orders of magnitude outside the
  // forward-error bound on a generic matrix.
  const CsrMatrix a = gen::random_uniform(64, 6, 11);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  const Oracle o = kahan_reference(a, x);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), 0.0);
  for (index_t i = 0; i < a.nrows(); ++i) {
    value_t sum = 0.0;
    for (index_t k = a.rowptr()[i]; k < a.rowptr()[i + 1]; ++k) {
      const index_t j = (a.colind()[k] + 1) % a.ncols();  // the "bug"
      sum += a.values()[k] * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
  EXPECT_FALSE(compare(o, y, UlpPolicy{}).pass());
}

TEST(Compare, CheckSpmvConvenienceAgrees) {
  const CsrMatrix a = gen::stencil_2d_5pt(6, 6);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, y);
  EXPECT_TRUE(check_spmv(a, x, y).pass());
}

TEST(Compare, AdversarialVectorIsDeterministicAndFinite) {
  const auto a = adversarial_vector(512, 3);
  const auto b = adversarial_vector(512, 3);
  EXPECT_EQ(a, b);
  for (const value_t v : a) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NE(a, adversarial_vector(512, 4));
}

}  // namespace
}  // namespace spmvopt::verify
