#include <gtest/gtest.h>

#include <cmath>

#include "features/features.hpp"
#include "gen/generators.hpp"

namespace spmvopt {
namespace {

using features::extract_features;
using features::FeatureId;
using features::FeatureVector;

// Hand-checkable 4x4:
//   row 0: cols {0, 1, 2, 3}  (nnz 4, bw 3, 1 group)
//   row 1: cols {0, 3}        (nnz 2, bw 3, 2 groups, 1 "miss" w/ line=2)
//   row 2: cols {2}           (nnz 1, bw 0, 1 group)
//   row 3: empty              (nnz 0, bw 0)
CsrMatrix hand_matrix() {
  CooMatrix coo(4, 4);
  for (index_t j = 0; j < 4; ++j) coo.add(0, j, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 3, 1.0);
  coo.add(2, 2, 1.0);
  coo.compress();
  return CsrMatrix::from_coo(coo);
}

TEST(Features, NnzStatistics) {
  const FeatureVector f = extract_features(hand_matrix(), 2, 1);
  EXPECT_DOUBLE_EQ(f[FeatureId::NnzMin], 0.0);
  EXPECT_DOUBLE_EQ(f[FeatureId::NnzMax], 4.0);
  EXPECT_DOUBLE_EQ(f[FeatureId::NnzAvg], 7.0 / 4.0);
  // Population sd of {4,2,1,0}: mean 1.75, var (5.0625+0.0625+0.5625+3.0625)/4
  const double var = (5.0625 + 0.0625 + 0.5625 + 3.0625) / 4.0;
  EXPECT_NEAR(f[FeatureId::NnzSd], std::sqrt(var), 1e-12);
}

TEST(Features, Density) {
  const FeatureVector f = extract_features(hand_matrix(), 2, 1);
  EXPECT_DOUBLE_EQ(f[FeatureId::Density], 7.0 / 16.0);
}

TEST(Features, BandwidthStatistics) {
  const FeatureVector f = extract_features(hand_matrix(), 2, 1);
  // bw: {3, 3, 0, 0}.
  EXPECT_DOUBLE_EQ(f[FeatureId::BwMin], 0.0);
  EXPECT_DOUBLE_EQ(f[FeatureId::BwMax], 3.0);
  EXPECT_DOUBLE_EQ(f[FeatureId::BwAvg], 1.5);
  EXPECT_NEAR(f[FeatureId::BwSd], 1.5, 1e-12);
}

TEST(Features, ScatterAkaDispersion) {
  const FeatureVector f = extract_features(hand_matrix(), 2, 1);
  // scatter = nnz/(bw+1): {4/4, 2/4, 1/1, 0} = {1, .5, 1, 0}, avg = 0.625.
  EXPECT_DOUBLE_EQ(f[FeatureId::ScatterAvg], 0.625);
}

TEST(Features, Clustering) {
  const FeatureVector f = extract_features(hand_matrix(), 2, 1);
  // groups/nnz: row0 1/4, row1 2/2, row2 1/1, row3 0 → avg = 2.25/4.
  EXPECT_DOUBLE_EQ(f[FeatureId::ClusteringAvg], (0.25 + 1.0 + 1.0 + 0.0) / 4.0);
}

TEST(Features, MissesCountsLargeGaps) {
  // Cache line of 2 elements: row 1's gap of 3 (> 2) is one miss.
  const FeatureVector f = extract_features(hand_matrix(), 2, 1);
  EXPECT_DOUBLE_EQ(f[FeatureId::MissesAvg], 1.0 / 4.0);
  // With an 8-element line nothing misses.
  const FeatureVector f8 = extract_features(hand_matrix(), 8, 1);
  EXPECT_DOUBLE_EQ(f8[FeatureId::MissesAvg], 0.0);
}

TEST(Features, SizeFlagRespectsLlcOverride) {
  const CsrMatrix a = hand_matrix();
  EXPECT_DOUBLE_EQ(extract_features(a, 8, 10'000'000)[FeatureId::Size], 1.0);
  EXPECT_DOUBLE_EQ(extract_features(a, 8, 16)[FeatureId::Size], 0.0);
}

TEST(Features, DenseMatrixIsMaximallyClustered) {
  const FeatureVector f = extract_features(gen::dense(32), 8, 1);
  EXPECT_NEAR(f[FeatureId::ClusteringAvg], 1.0 / 32.0, 1e-12);
  EXPECT_DOUBLE_EQ(f[FeatureId::MissesAvg], 0.0);
  EXPECT_DOUBLE_EQ(f[FeatureId::Density], 1.0);
}

TEST(Features, RandomMatrixHasHighMisses) {
  const CsrMatrix a = gen::random_uniform(2000, 16, 3);
  const FeatureVector f = extract_features(a, 8, 1);
  // 16 random columns over 2000: almost every gap exceeds a cache line.
  EXPECT_GT(f[FeatureId::MissesAvg], 10.0);
  EXPECT_GT(f[FeatureId::BwAvg], 1000.0);
}

TEST(Features, PowerLawHasHighNnzSd) {
  const auto few = extract_features(gen::few_dense_rows(1500, 3, 4, 1000, 5), 8, 1);
  const auto uni = extract_features(gen::random_uniform(1500, 5, 5), 8, 1);
  EXPECT_GT(few[FeatureId::NnzSd], 10.0 * uni[FeatureId::NnzSd] + 1.0);
}

TEST(Features, ProjectKeepsOrder) {
  const FeatureVector f = extract_features(hand_matrix(), 2, 1);
  const auto v = features::project(f, {FeatureId::NnzMax, FeatureId::Density});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 4.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0 / 16.0);
}

TEST(Features, TableIvSubsetsAreWellFormed) {
  EXPECT_EQ(features::on_feature_set().size(), 6u);
  EXPECT_EQ(features::onnz_feature_set().size(), 9u);
  for (auto id : features::onnz_feature_set())
    EXPECT_NE(features::feature_name(id), nullptr);
}

TEST(Features, EmptyMatrixThrows) {
  CooMatrix coo(0, 0);
  coo.compress();
  EXPECT_THROW((void)extract_features(CsrMatrix::from_coo(coo)),
               std::invalid_argument);
}

TEST(Features, NeedsNnzScanOnlyForGapFeatures) {
  EXPECT_FALSE(features::needs_nnz_scan(features::on_feature_set()));
  EXPECT_TRUE(features::needs_nnz_scan(features::onnz_feature_set()));
  EXPECT_FALSE(features::needs_nnz_scan({FeatureId::NnzMax, FeatureId::BwSd}));
  EXPECT_TRUE(features::needs_nnz_scan({FeatureId::ClusteringAvg}));
  EXPECT_TRUE(features::needs_nnz_scan({FeatureId::MissesAvg}));
}

TEST(Features, SubsetExtractionMatchesFullForRequestedIds) {
  const CsrMatrix a = gen::power_law(800, 9, 2.0, 3);
  const FeatureVector full = extract_features(a, 8, 1);
  for (const auto& ids :
       {features::on_feature_set(), features::onnz_feature_set()}) {
    const FeatureVector sub = features::extract_features_subset(a, ids, 8, 1);
    for (auto id : ids) EXPECT_DOUBLE_EQ(sub[id], full[id]);
  }
}

TEST(Features, SubsetExtractionZeroesUnrequestedGapFeatures) {
  const CsrMatrix a = gen::random_uniform(500, 6, 5);
  const FeatureVector sub =
      features::extract_features_subset(a, features::on_feature_set(), 8, 1);
  EXPECT_DOUBLE_EQ(sub[FeatureId::ClusteringAvg], 0.0);
  EXPECT_DOUBLE_EQ(sub[FeatureId::MissesAvg], 0.0);
}

TEST(Features, AllNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < features::kFeatureCount; ++i)
    names.insert(features::feature_name(static_cast<FeatureId>(i)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(features::kFeatureCount));
}

}  // namespace
}  // namespace spmvopt
