// Malformed Matrix Market corpus (DESIGN.md §6): every entry asserts the
// hardened reader reports the right ErrorCategory — and, under the sanitizer
// CI jobs, that no input crashes or leaks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "sparse/mmio.hpp"

namespace spmvopt {
namespace {

Error parse_error(const std::string& text) {
  std::istringstream in(text);
  Expected<CooMatrix> r = read_matrix_market_checked(in);
  EXPECT_FALSE(r.ok()) << "parsed successfully:\n" << text;
  return r.ok() ? Error(ErrorCategory::Internal, "unexpected success")
                : r.error();
}

TEST(MmioMalformed, EmptyStream) {
  EXPECT_EQ(parse_error("").category(), ErrorCategory::Format);
}

TEST(MmioMalformed, TruncatedHeader) {
  EXPECT_EQ(parse_error("%%MatrixMarket matrix\n").category(),
            ErrorCategory::Format);
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate\n1 1 1\n1 1 1\n")
                .category(),
            ErrorCategory::Format);
}

TEST(MmioMalformed, NotMatrixMarketAtAll) {
  EXPECT_EQ(parse_error("hello world\n1 2 3\n").category(),
            ErrorCategory::Format);
}

TEST(MmioMalformed, MissingSizeLine) {
  EXPECT_EQ(
      parse_error("%%MatrixMarket matrix coordinate real general\n% only\n")
          .category(),
      ErrorCategory::Format);
}

TEST(MmioMalformed, NonNumericSizeLine) {
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real general\n"
                        "two two four\n")
                .category(),
            ErrorCategory::Format);
}

TEST(MmioMalformed, NegativeNnz) {
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 -1\n")
                .category(),
            ErrorCategory::Format);
}

TEST(MmioMalformed, FewerEntriesThanDeclared) {
  const Error e = parse_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n"
      "2 2 2.0\n");
  EXPECT_EQ(e.category(), ErrorCategory::Format);
  EXPECT_NE(e.message().find("unexpected end of file"), std::string::npos);
}

TEST(MmioMalformed, MoreEntriesThanDeclared) {
  const Error e = parse_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0\n"
      "2 2 2.0\n");
  EXPECT_EQ(e.category(), ErrorCategory::Format);
  EXPECT_NE(e.message().find("more entries"), std::string::npos);
}

TEST(MmioMalformed, ZeroIndexRejected) {
  // Matrix Market is 1-based; 0 must not silently wrap to row -1.
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "0 1 1.0\n")
                .category(),
            ErrorCategory::Format);
}

TEST(MmioMalformed, NegativeIndexRejected) {
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "1 -1 1.0\n")
                .category(),
            ErrorCategory::Format);
}

TEST(MmioMalformed, OutOfRangeIndexRejected) {
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 1\n"
                        "3 1 1.0\n")
                .category(),
            ErrorCategory::Format);
}

TEST(MmioMalformed, NonNumericValue) {
  const Error e = parse_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 fortytwo\n");
  EXPECT_EQ(e.category(), ErrorCategory::Format);
  EXPECT_NE(e.message().find("line 3"), std::string::npos);
}

TEST(MmioMalformed, DimensionPastIndexRangeIsResource) {
  // 2^40 rows is a legal Matrix Market header but unrepresentable with
  // 32-bit indices: a limit of this build, not a malformed file.
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real general\n"
                        "1099511627776 1 1\n"
                        "1 1 1.0\n")
                .category(),
            ErrorCategory::Resource);
}

TEST(MmioMalformed, NnzCeilingIsResource) {
  setenv("SPMVOPT_MAX_NNZ", "2", 1);
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 3\n"
                        "1 1 1.0\n2 2 2.0\n3 3 3.0\n")
                .category(),
            ErrorCategory::Resource);
  unsetenv("SPMVOPT_MAX_NNZ");
}

TEST(MmioMalformed, BytesCeilingCountsSymmetricExpansion) {
  // 2 declared entries, symmetric -> up to 4 stored triplets.  A ceiling
  // that admits 2 triplets but not 4 must reject the file *before* reading.
  setenv("SPMVOPT_MAX_BYTES", "48", 1);  // 3 x sizeof(Triplet)
  EXPECT_EQ(parse_error("%%MatrixMarket matrix coordinate real symmetric\n"
                        "3 3 2\n"
                        "2 1 1.0\n3 1 2.0\n")
                .category(),
            ErrorCategory::Resource);
  unsetenv("SPMVOPT_MAX_BYTES");
}

TEST(MmioMalformed, ArrayCannotBePattern) {
  EXPECT_EQ(parse_error("%%MatrixMarket matrix array pattern general\n"
                        "2 2\n")
                .category(),
            ErrorCategory::Format);
}

// --- Well-formed corner cases that must PARSE (regressions of the above
// --- checks being too eager).

TEST(MmioMalformed, CrlfLineEndingsParse) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "2 2 2\r\n"
      "1 1 1.5\r\n"
      "2 2 2.5\r\n");
  Expected<CooMatrix> r = read_matrix_market_checked(in);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().nnz(), 2u);
}

TEST(MmioMalformed, PatternSymmetricWithDiagonal) {
  // Pattern entries carry no value (implicit 1.0); the diagonal entry must
  // not be doubled by symmetry expansion.
  std::istringstream in(
      "%%MatrixMarket matrix pattern coordinate general\n");  // wrong order
  // (format and field are positional: this header is malformed)
  EXPECT_FALSE(read_matrix_market_checked(in).ok());

  std::istringstream ok(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 3\n"
      "1 1\n"
      "2 1\n"
      "3 2\n");
  Expected<CooMatrix> r = read_matrix_market_checked(ok);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const CooMatrix& coo = r.value();
  EXPECT_EQ(coo.nnz(), 5u);  // diagonal once + 2 mirrored pairs
  for (const Triplet& t : coo.entries()) EXPECT_DOUBLE_EQ(t.value, 1.0);
}

TEST(MmioMalformed, SkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  Expected<CooMatrix> r = read_matrix_market_checked(in);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().nnz(), 2u);
  double sum = 0.0;
  for (const Triplet& t : r.value().entries()) sum += t.value;
  EXPECT_DOUBLE_EQ(sum, 0.0);  // +3 and -3
}

TEST(MmioMalformed, BlankAndCommentLinesBetweenEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "% between entries\n"
      "\n"
      "2 2 2.0\n");
  Expected<CooMatrix> r = read_matrix_market_checked(in);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().nnz(), 2u);
}

TEST(MmioMalformed, FileErrorCarriesPathContext) {
  Expected<CooMatrix> r =
      read_matrix_market_file_checked("/nonexistent/spmvopt_x.mtx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Io);
}

TEST(MmioMalformed, ThrowingShimRaisesSpmvException) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "9 9 1.0\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected SpmvException";
  } catch (const SpmvException& e) {
    EXPECT_EQ(e.error().category(), ErrorCategory::Format);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace spmvopt
