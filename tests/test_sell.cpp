#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "kernels/sell_kernels.hpp"
#include "optimize/optimized_spmv.hpp"
#include "sparse/sell.hpp"

namespace spmvopt {
namespace {

void expect_matches_csr(const CsrMatrix& a, const SellMatrix& s) {
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), std::nan(""));
  s.multiply(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
  // And the parallel/SIMD kernel.
  std::fill(y.begin(), y.end(), std::nan(""));
  kernels::spmv_sell(s, x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(Sell, CorrectOnAllTestFamilies) {
  for (const auto& entry : gen::test_suite()) {
    SCOPED_TRACE(entry.name);
    const CsrMatrix a = entry.make();
    expect_matches_csr(a, SellMatrix::from_csr(a, kernels::sell_native_chunk(),
                                               128));
  }
}

TEST(Sell, CorrectForVariousChunksAndSigmas) {
  const CsrMatrix a = gen::power_law(700, 9, 2.0, 13);
  for (index_t chunk : {1, 2, 4, 8, 16})
    for (index_t sigma : {1, 8, 64, 1024}) {
      SCOPED_TRACE("C=" + std::to_string(chunk) + " sigma=" + std::to_string(sigma));
      expect_matches_csr(a, SellMatrix::from_csr(a, chunk, sigma));
    }
}

TEST(Sell, RowCountNotMultipleOfChunk) {
  const CsrMatrix a = gen::random_uniform(101, 5, 7);  // 101 % 8 != 0
  expect_matches_csr(a, SellMatrix::from_csr(a, 8, 32));
}

TEST(Sell, SigmaSortingReducesPadding) {
  // Power-law rows: without sorting (sigma=1) chunks pad to the hub rows;
  // window sorting must cut the padding substantially.
  const CsrMatrix a = gen::power_law(4000, 10, 1.8, 3);
  const SellMatrix unsorted = SellMatrix::from_csr(a, 8, 1);
  const SellMatrix sorted = SellMatrix::from_csr(a, 8, 512);
  EXPECT_LT(sorted.padding_overhead(), 0.6 * unsorted.padding_overhead());
}

TEST(Sell, UniformRowsHaveNoPadding) {
  const CsrMatrix a = gen::random_uniform(512, 6, 5);
  const SellMatrix s = SellMatrix::from_csr(a, 8, 64);
  EXPECT_DOUBLE_EQ(s.padding_overhead(), 0.0);
}

TEST(Sell, PermutationIsAPermutation) {
  const CsrMatrix a = gen::power_law(300, 8, 2.0, 9);
  const SellMatrix s = SellMatrix::from_csr(a, 4, 32);
  std::vector<bool> seen(static_cast<std::size_t>(a.nrows()), false);
  for (index_t p = 0; p < a.nrows(); ++p) {
    const index_t row = s.row_perm()[p];
    ASSERT_GE(row, 0);
    ASSERT_LT(row, a.nrows());
    ASSERT_FALSE(seen[static_cast<std::size_t>(row)]);
    seen[static_cast<std::size_t>(row)] = true;
  }
}

TEST(Sell, SortedWithinWindowsByLength) {
  const CsrMatrix a = gen::power_law(512, 8, 2.0, 11);
  const index_t sigma = 64;
  const SellMatrix s = SellMatrix::from_csr(a, 8, sigma);
  for (index_t w = 0; w < a.nrows(); w += sigma)
    for (index_t p = w + 1; p < std::min<index_t>(a.nrows(), w + sigma); ++p)
      EXPECT_GE(s.row_len()[p - 1], s.row_len()[p]);
}

TEST(Sell, RejectsBadParams) {
  const CsrMatrix a = gen::diagonal(8);
  EXPECT_THROW((void)SellMatrix::from_csr(a, 0, 8), std::invalid_argument);
  EXPECT_THROW((void)SellMatrix::from_csr(a, 8, 0), std::invalid_argument);
}

TEST(Sell, NativeChunkMatchesBuild) {
  const index_t c = kernels::sell_native_chunk();
  EXPECT_TRUE(c == 1 || c == 4 || c == 8);
}

TEST(SellPlan, OptimizedSpmvRunsSellPlan) {
  const CsrMatrix a = gen::banded(800, 60, 12, 21);
  const auto spmv =
      optimize::OptimizedSpmv::create(a, optimize::sell_plan(), 2);
  EXPECT_EQ(spmv.plan().to_string(), "sell");
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  spmv.run(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(SellPlan, MergeAbsorbsCsrOptimizations) {
  optimize::Plan pf;
  pf.prefetch = true;
  const optimize::Plan merged = optimize::merge_plans(pf, optimize::sell_plan());
  EXPECT_TRUE(merged.sell);
  EXPECT_FALSE(merged.prefetch);
}

TEST(SellPlan, InvalidCombinationsRejected) {
  const CsrMatrix a = gen::diagonal(16);
  optimize::Plan bad = optimize::sell_plan();
  bad.prefetch = true;
  EXPECT_THROW((void)optimize::OptimizedSpmv::create(a, bad, 1),
               std::invalid_argument);
}

TEST(SellPlan, EnumeratedPlansIncludeSell) {
  const auto plans = optimize::enumerate_plans(gen::diagonal(32));
  bool found = false;
  for (const auto& p : plans) found = found || p.sell;
  EXPECT_TRUE(found);
}

TEST(BcsrPlan, OptimizedSpmvRunsBcsrPlan) {
  const CsrMatrix a = gen::block_diagonal_dense(256, 8, 5);
  const auto spmv = optimize::OptimizedSpmv::create(a, optimize::bcsr_plan(), 2);
  EXPECT_TRUE(spmv.plan().bcsr);  // blocking pays on this matrix
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  spmv.run(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(BcsrPlan, FallsBackOnScatteredMatrix) {
  const CsrMatrix a = gen::random_uniform(800, 4, 7);
  const auto spmv = optimize::OptimizedSpmv::create(a, optimize::bcsr_plan(), 2);
  EXPECT_FALSE(spmv.plan().bcsr);  // declined, running plain CSR
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  spmv.run(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(BcsrPlan, EnumeratedOnlyWhenBlockingPays) {
  const auto blocked = optimize::enumerate_plans(gen::block_diagonal_dense(128, 8, 3));
  bool found = false;
  for (const auto& p : blocked) found = found || p.bcsr;
  EXPECT_TRUE(found);
  const auto scattered = optimize::enumerate_plans(gen::random_uniform(800, 4, 7));
  for (const auto& p : scattered) EXPECT_FALSE(p.bcsr);
}

TEST(BcsrPlan, InvalidCombinationsRejected) {
  const CsrMatrix a = gen::diagonal(16);
  optimize::Plan bad = optimize::bcsr_plan();
  bad.delta = true;
  EXPECT_THROW((void)optimize::OptimizedSpmv::create(a, bad, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace spmvopt
