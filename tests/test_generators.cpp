#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "support/rng.hpp"

namespace spmvopt {
namespace {

TEST(Generators, DenseIsFullyDense) {
  const CsrMatrix a = gen::dense(10);
  EXPECT_EQ(a.nrows(), 10);
  EXPECT_EQ(a.nnz(), 100);
  for (index_t i = 0; i < 10; ++i) EXPECT_EQ(a.row_nnz(i), 10);
}

TEST(Generators, DenseIsDeterministic) {
  EXPECT_TRUE(gen::dense(16, 5).equals(gen::dense(16, 5)));
}

TEST(Generators, Stencil2dShape) {
  const CsrMatrix a = gen::stencil_2d_5pt(4, 5);
  EXPECT_EQ(a.nrows(), 20);
  EXPECT_TRUE(a.is_symmetric());
  // Interior rows have 5 nonzeros, corners 3.
  index_t max_nnz = 0, min_nnz = 100;
  for (index_t i = 0; i < a.nrows(); ++i) {
    max_nnz = std::max(max_nnz, a.row_nnz(i));
    min_nnz = std::min(min_nnz, a.row_nnz(i));
  }
  EXPECT_EQ(max_nnz, 5);
  EXPECT_EQ(min_nnz, 3);
}

TEST(Generators, Stencil3dRowSumsAreNonnegative) {
  // -1 off-diagonals, +6 diagonal: weak diagonal dominance (SPD Laplacian).
  const CsrMatrix a = gen::stencil_3d_7pt(5, 5, 5);
  EXPECT_EQ(a.nrows(), 125);
  EXPECT_TRUE(a.is_symmetric());
  for (index_t i = 0; i < a.nrows(); ++i) {
    value_t sum = 0.0;
    for (index_t j = a.rowptr()[i]; j < a.rowptr()[i + 1]; ++j)
      sum += a.values()[j];
    EXPECT_GE(sum, 0.0);
  }
}

TEST(Generators, Stencil27PointHasDenserRows) {
  const CsrMatrix a = gen::stencil_3d_27pt(5, 5, 5);
  index_t max_nnz = 0;
  for (index_t i = 0; i < a.nrows(); ++i)
    max_nnz = std::max(max_nnz, a.row_nnz(i));
  EXPECT_EQ(max_nnz, 27);
}

TEST(Generators, BandedStaysInBand) {
  const index_t half_bw = 30;
  const CsrMatrix a = gen::banded(500, half_bw, 9, 3);
  for (index_t i = 0; i < a.nrows(); ++i)
    for (index_t j = a.rowptr()[i]; j < a.rowptr()[i + 1]; ++j)
      EXPECT_LE(std::abs(a.colind()[j] - i), half_bw);
}

TEST(Generators, BandedHasDiagonal) {
  const CsrMatrix a = gen::banded(100, 10, 5, 3);
  for (index_t i = 0; i < a.nrows(); ++i) {
    bool has_diag = false;
    for (index_t j = a.rowptr()[i]; j < a.rowptr()[i + 1]; ++j)
      if (a.colind()[j] == i) has_diag = true;
    EXPECT_TRUE(has_diag);
  }
}

TEST(Generators, RandomUniformRowLengths) {
  const CsrMatrix a = gen::random_uniform(300, 7, 1);
  for (index_t i = 0; i < a.nrows(); ++i) EXPECT_EQ(a.row_nnz(i), 7);
}

TEST(Generators, RmatDimensions) {
  const CsrMatrix a = gen::rmat(10, 8, 0.5, 0.2, 0.2, 3);
  EXPECT_EQ(a.nrows(), 1024);
  EXPECT_LE(a.nnz(), 1024 * 8);  // duplicates collapse
  EXPECT_GT(a.nnz(), 1024 * 4);  // but most edges survive
}

TEST(Generators, RmatIsSkewed) {
  // With a=0.55 the degree distribution must be heavily skewed.
  const CsrMatrix a = gen::rmat(12, 8, 0.55, 0.2, 0.15, 3);
  index_t max_nnz = 0;
  double avg = static_cast<double>(a.nnz()) / a.nrows();
  for (index_t i = 0; i < a.nrows(); ++i)
    max_nnz = std::max(max_nnz, a.row_nnz(i));
  EXPECT_GT(static_cast<double>(max_nnz), 8.0 * avg);
}

TEST(Generators, PowerLawMeanApproximatesTarget) {
  const CsrMatrix a = gen::power_law(5000, 12, 2.0, 5);
  const double avg = static_cast<double>(a.nnz()) / a.nrows();
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Generators, FewDenseRowsConcentratesNnz) {
  const CsrMatrix a = gen::few_dense_rows(2000, 3, 5, 1500, 7);
  // The 5 dense rows should hold a large share of all nonzeros.
  std::vector<index_t> lens;
  for (index_t i = 0; i < a.nrows(); ++i) lens.push_back(a.row_nnz(i));
  std::sort(lens.begin(), lens.end(), std::greater<>());
  const double top5 = static_cast<double>(lens[0] + lens[1] + lens[2] +
                                          lens[3] + lens[4]);
  EXPECT_GT(top5 / static_cast<double>(a.nnz()), 0.4);
}

TEST(Generators, ShortRowsAreShortOnAverage) {
  const CsrMatrix a = gen::short_rows(5000, 3.0, 7);
  const double avg = static_cast<double>(a.nnz()) / a.nrows();
  EXPECT_LT(avg, 6.0);
}

TEST(Generators, BlockDiagonalStructure) {
  const CsrMatrix a = gen::block_diagonal_dense(64, 16, 3);
  EXPECT_EQ(a.nnz(), 4 * 16 * 16);
  for (index_t i = 0; i < a.nrows(); ++i) {
    const index_t block = i / 16;
    for (index_t j = a.rowptr()[i]; j < a.rowptr()[i + 1]; ++j)
      EXPECT_EQ(a.colind()[j] / 16, block);
  }
}

TEST(Generators, DiagonalIsIdentityLike) {
  const CsrMatrix a = gen::diagonal(10, 2.0);
  EXPECT_EQ(a.nnz(), 10);
  for (index_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.colind()[i], i);
    EXPECT_DOUBLE_EQ(a.values()[i], 2.0);
  }
}

TEST(Generators, MakeDiagonallyDominant) {
  const CsrMatrix a = gen::make_diagonally_dominant(
      gen::random_uniform(200, 6, 9), 1.0);
  for (index_t i = 0; i < a.nrows(); ++i) {
    value_t diag = 0.0, off = 0.0;
    for (index_t j = a.rowptr()[i]; j < a.rowptr()[i + 1]; ++j) {
      if (a.colind()[j] == i)
        diag = a.values()[j];
      else
        off += std::abs(a.values()[j]);
    }
    EXPECT_GE(diag, off + 0.999);
  }
}

TEST(Generators, InvalidArgsThrow) {
  EXPECT_THROW((void)gen::dense(0), std::invalid_argument);
  EXPECT_THROW((void)gen::banded(10, 0, 3), std::invalid_argument);
  EXPECT_THROW((void)gen::rmat(0, 8, 0.5, 0.2, 0.2), std::invalid_argument);
  EXPECT_THROW((void)gen::rmat(10, 8, 0.8, 0.3, 0.2), std::invalid_argument);
  EXPECT_THROW((void)gen::power_law(100, 5, 1.0), std::invalid_argument);
  // Rectangular matrices cannot be made diagonally dominant.
  CooMatrix rect(2, 3);
  rect.add(0, 0, 1.0);
  rect.compress();
  EXPECT_THROW(
      (void)gen::make_diagonally_dominant(CsrMatrix::from_coo(rect), 1.0),
      std::invalid_argument);
}

TEST(Rng, Xoshiro256SameSeedSameStream) {
  Xoshiro256 a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
  Xoshiro256 c(12345), d(54321);
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i) diverged = c() != d();
  EXPECT_TRUE(diverged);
}

TEST(Rng, Xoshiro256StreamIsPinned) {
  // Golden values for seed 42: any change to seeding or the update breaks
  // every stored bench table and trained classifier, so pin the stream.
  Xoshiro256 r(42);
  EXPECT_EQ(r(), 1546998764402558742ull);
  EXPECT_EQ(r(), 6990951692964543102ull);
  EXPECT_EQ(r(), 12544586762248559009ull);
  Xoshiro256 u(42);
  EXPECT_DOUBLE_EQ(u.uniform(), 0.083862971059882163);
  EXPECT_DOUBLE_EQ(u.uniform(), 0.37898025066266861);
  EXPECT_DOUBLE_EQ(u.uniform(), 0.68004341102813937);
}

TEST(Rng, BoundedStaysInBound) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.bounded(13), 13u);
  EXPECT_EQ(r.bounded(0), 0u);
  EXPECT_EQ(r.bounded(1), 0u);
}

/// Every generator, built twice under different OpenMP settings, must be
/// bit-identical: seeds fully determine the suite, independent of threads.
TEST(Generators, AllFamiliesDeterministicAcrossThreadCounts) {
  const auto build_all = [] {
    std::vector<CsrMatrix> out;
    out.push_back(gen::dense(24, 5));
    out.push_back(gen::stencil_2d_5pt(9, 11));
    out.push_back(gen::stencil_3d_7pt(4, 5, 6));
    out.push_back(gen::stencil_3d_27pt(4, 4, 4));
    out.push_back(gen::banded(200, 15, 6, 3));
    out.push_back(gen::random_uniform(150, 5, 9));
    out.push_back(gen::rmat(8, 6, 0.5, 0.2, 0.2, 3));
    out.push_back(gen::power_law(300, 5, 1.9, 11));
    out.push_back(gen::few_dense_rows(200, 2, 3, 100, 13));
    out.push_back(gen::short_rows(400, 2.5, 17));
    out.push_back(gen::block_diagonal_dense(48, 12, 19));
    out.push_back(gen::diagonal(30, 1.5));
    out.push_back(
        gen::make_diagonally_dominant(gen::random_uniform(100, 4, 21), 1.0));
    return out;
  };

  const int max_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const std::vector<CsrMatrix> serial = build_all();
  const std::vector<CsrMatrix> serial2 = build_all();
  omp_set_num_threads(max_threads > 1 ? max_threads : 2);
  const std::vector<CsrMatrix> threaded = build_all();
  omp_set_num_threads(max_threads);

  ASSERT_EQ(serial.size(), serial2.size());
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_TRUE(serial[k].equals(serial2[k])) << "family " << k;
    EXPECT_TRUE(serial[k].equals(threaded[k])) << "family " << k;
    // equals() could in principle tolerate representational slack; the
    // guarantee here is *bit*-identity of the value stream.
    ASSERT_EQ(serial[k].nnz(), threaded[k].nnz()) << "family " << k;
    for (index_t j = 0; j < serial[k].nnz(); ++j) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(serial[k].values()[j]),
                std::bit_cast<std::uint64_t>(threaded[k].values()[j]))
          << "family " << k << " nnz " << j;
    }
  }
}

TEST(Generators, TestVectorDeterministic) {
  const auto a = gen::test_vector(500, 7);
  const auto b = gen::test_vector(500, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]));
  const auto c = gen::test_vector(500, 8);
  bool diverged = false;
  for (std::size_t i = 0; i < c.size() && !diverged; ++i) diverged = a[i] != c[i];
  EXPECT_TRUE(diverged);
}

TEST(Suite, EvaluationSuiteHasPaperMatrices) {
  const auto suite = gen::evaluation_suite(0.05);
  EXPECT_GE(suite.size(), 30u);
  EXPECT_EQ(suite.front().name, "small-dense");
  EXPECT_EQ(suite.back().name, "large-dense");
  // Spot-check a few names from the paper's x-axis.
  auto has = [&](const char* name) {
    for (const auto& e : suite)
      if (e.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("poisson3Db"));
  EXPECT_TRUE(has("webbase-1M"));
  EXPECT_TRUE(has("rajat30"));
  EXPECT_TRUE(has("wikipedia-20051105"));
}

TEST(Suite, EntriesBuildValidMatrices) {
  for (const auto& e : gen::test_suite()) {
    const CsrMatrix a = e.make();
    EXPECT_GT(a.nrows(), 0) << e.name;
    EXPECT_GT(a.nnz(), 0) << e.name;
  }
}

TEST(Suite, ScaleShrinksMatrices) {
  auto big = gen::evaluation_suite(1.0);
  auto small = gen::evaluation_suite(0.05);
  // Compare one non-grid entry (index 4: ins2 / random_uniform).
  EXPECT_GT(big[4].make().nnz(), small[4].make().nnz());
}

TEST(Suite, ScaleValidation) {
  EXPECT_THROW((void)gen::evaluation_suite(0.0), std::invalid_argument);
  EXPECT_THROW((void)gen::evaluation_suite(1.5), std::invalid_argument);
}

TEST(Suite, TrainingPoolCoversFamilies) {
  const auto pool = gen::training_pool(30);
  EXPECT_EQ(pool.size(), 30u);
  std::set<std::string> families;
  for (const auto& e : pool) families.insert(e.family);
  EXPECT_GE(families.size(), 10u);
}

TEST(Suite, TrainingPoolMatricesAreValid) {
  for (const auto& e : gen::training_pool(10)) {
    const CsrMatrix a = e.make();
    EXPECT_GT(a.nnz(), 0) << e.name;
  }
}

}  // namespace
}  // namespace spmvopt
