#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "kernels/bcsr_kernels.hpp"
#include "sparse/bcsr.hpp"

namespace spmvopt {
namespace {

void expect_matches_csr(const CsrMatrix& a, const BcsrMatrix& b) {
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), std::nan(""));
  b.multiply(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
  std::fill(y.begin(), y.end(), std::nan(""));
  kernels::spmv_bcsr(b, x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(Bcsr, CorrectOnAllTestFamiliesAndShapes) {
  for (const auto& entry : gen::test_suite()) {
    const CsrMatrix a = entry.make();
    for (index_t br : {1, 2, 3, 4, 8})
      for (index_t bc : {1, 2, 4, 8}) {
        SCOPED_TRACE(entry.name + " " + std::to_string(br) + "x" +
                     std::to_string(bc));
        expect_matches_csr(a, BcsrMatrix::from_csr(a, br, bc));
      }
  }
}

TEST(Bcsr, RowCountNotMultipleOfBlock) {
  const CsrMatrix a = gen::random_uniform(101, 5, 7);  // 101 % 4 != 0
  expect_matches_csr(a, BcsrMatrix::from_csr(a, 4, 4));
}

TEST(Bcsr, RoundTripToCsr) {
  const CsrMatrix a = gen::power_law(300, 7, 2.0, 5);
  const BcsrMatrix b = BcsrMatrix::from_csr(a, 4, 2);
  EXPECT_TRUE(b.to_csr().equals(a));
}

TEST(Bcsr, PerfectlyBlockedMatrixHasFillOne) {
  // 4x4 dense diagonal blocks tiled on a multiple-of-4 grid.
  const CsrMatrix a = gen::block_diagonal_dense(64, 4, 3);
  const BcsrMatrix b = BcsrMatrix::from_csr(a, 4, 4);
  EXPECT_DOUBLE_EQ(b.fill_ratio(), 1.0);
  // One index per 16 elements: format must shrink vs CSR.
  EXPECT_LT(b.format_bytes(), a.format_bytes());
}

TEST(Bcsr, ScatteredMatrixHasHighFill) {
  const CsrMatrix a = gen::random_uniform(500, 4, 9);
  const BcsrMatrix b = BcsrMatrix::from_csr(a, 4, 4);
  EXPECT_GT(b.fill_ratio(), 4.0);  // isolated nonzeros cost ~16x
}

TEST(Bcsr, EstimateFillIsExactWithFullSample) {
  const CsrMatrix a = gen::banded(400, 30, 8, 3);
  for (index_t br : {2, 4})
    for (index_t bc : {2, 4}) {
      const BcsrMatrix b = BcsrMatrix::from_csr(a, br, bc);
      EXPECT_NEAR(BcsrMatrix::estimate_fill(a, br, bc, a.nrows()),
                  b.fill_ratio(), 1e-12);
    }
}

TEST(Bcsr, SampledEstimateNearExact) {
  const CsrMatrix a = gen::banded(3000, 50, 10, 7);
  const double exact = BcsrMatrix::from_csr(a, 4, 4).fill_ratio();
  const double sampled = BcsrMatrix::estimate_fill(a, 4, 4, 64);
  EXPECT_NEAR(sampled, exact, 0.15 * exact);
}

TEST(Bcsr, ChoosesBlockingForBlockedMatrix) {
  const CsrMatrix a = gen::block_diagonal_dense(256, 8, 3);
  const auto [br, bc] = BcsrMatrix::choose_block_size(a);
  EXPECT_GT(br * bc, 1);  // blocking pays on a perfectly blocked matrix
}

TEST(Bcsr, DeclinesBlockingForScatteredMatrix) {
  const CsrMatrix a = gen::random_uniform(2000, 4, 11);
  const auto [br, bc] = BcsrMatrix::choose_block_size(a);
  EXPECT_EQ(br, 1);
  EXPECT_EQ(bc, 1);
}

TEST(Bcsr, RejectsBadBlockDims) {
  const CsrMatrix a = gen::diagonal(8);
  EXPECT_THROW((void)BcsrMatrix::from_csr(a, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)BcsrMatrix::from_csr(a, 2, 9), std::invalid_argument);
}

TEST(Bcsr, EmptyMatrix) {
  CooMatrix coo(6, 6);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const BcsrMatrix b = BcsrMatrix::from_csr(a, 2, 2);
  EXPECT_EQ(b.num_blocks(), 0);
  const std::vector<value_t> x(6, 1.0);
  std::vector<value_t> y(6, 9.0);
  kernels::spmv_bcsr(b, x.data(), y.data());
  for (value_t v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace spmvopt
