#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "solvers/eigen.hpp"

namespace spmvopt::solvers {
namespace {

TEST(TridiagEigen, DiagonalMatrix) {
  // diag(3, 1, 2) has eigenvalues {1, 2, 3}.
  const std::vector<double> d{3.0, 1.0, 2.0};
  const std::vector<double> e{0.0, 0.0};
  const auto eig = tridiag_eigenvalues(d, e);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 1.0, 1e-9);
  EXPECT_NEAR(eig[1], 2.0, 1e-9);
  EXPECT_NEAR(eig[2], 3.0, 1e-9);
}

TEST(TridiagEigen, LaplacianClosedForm) {
  // 1-D Laplacian tridiag(-1, 2, -1) of size n has eigenvalues
  // 2 - 2 cos(k pi / (n+1)).
  const int n = 12;
  const std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  const std::vector<double> e(static_cast<std::size_t>(n) - 1, -1.0);
  const auto eig = tridiag_eigenvalues(d, e);
  for (int k = 1; k <= n; ++k) {
    const double exact = 2.0 - 2.0 * std::cos(k * M_PI / (n + 1));
    EXPECT_NEAR(eig[static_cast<std::size_t>(k) - 1], exact, 1e-8);
  }
}

TEST(TridiagEigen, ValidatesSizes) {
  const std::vector<double> d{1.0, 2.0};
  const std::vector<double> bad{0.0, 0.0};
  EXPECT_THROW((void)tridiag_eigenvalues(d, bad), std::invalid_argument);
}

TEST(PowerMethod, DiagonalDominantEigenvalue) {
  CooMatrix coo(5, 5);
  const double evs[5] = {1.0, -2.0, 3.0, 0.5, 7.0};
  for (index_t i = 0; i < 5; ++i) coo.add(i, i, evs[i]);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto r = power_method(LinearOperator::from_csr(a));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvalue, 7.0, 1e-6);
  // Eigenvector concentrates on coordinate 4.
  EXPECT_GT(std::abs(r.eigenvector[4]), 0.999);
}

TEST(PowerMethod, StencilLargestEigenvalue) {
  // 2-D 5-point Laplacian on an m x m grid: lambda_max =
  // 4 + 4 cos(pi/(m+1)) ... precisely 8 sin^2(m pi / (2(m+1))) per dimension
  // sum; easier: compare against Lanczos below. Here check range (0, 8).
  const CsrMatrix a = gen::stencil_2d_5pt(16, 16);
  EigenOptions opt;
  opt.max_iterations = 2000;
  opt.tolerance = 1e-12;
  const auto r = power_method(LinearOperator::from_csr(a), opt);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.eigenvalue, 6.0);
  EXPECT_LT(r.eigenvalue, 8.0);
  // Residual check: ||A v - lambda v|| small.
  std::vector<value_t> av(r.eigenvector.size());
  a.multiply(r.eigenvector, av);
  double res = 0.0;
  for (std::size_t i = 0; i < av.size(); ++i)
    res += (av[i] - r.eigenvalue * r.eigenvector[i]) *
           (av[i] - r.eigenvalue * r.eigenvector[i]);
  EXPECT_LT(std::sqrt(res), 1e-3);
}

TEST(PowerMethod, RejectsRectangular) {
  CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.compress();
  const auto op = LinearOperator::from_csr(CsrMatrix::from_coo(coo));
  EXPECT_THROW((void)power_method(op), std::invalid_argument);
}

TEST(Lanczos, RecoversLaplacianExtremes) {
  // 1-D Laplacian as a sparse matrix: extreme eigenvalues known in closed
  // form; Lanczos converges to the extremes fastest.
  const index_t n = 200;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) coo.add_symmetric(i, i + 1, -1.0);
  }
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto r = lanczos_extreme(LinearOperator::from_csr(a), 80, 3);
  const double exact_min = 2.0 - 2.0 * std::cos(M_PI / (n + 1));
  const double exact_max = 2.0 - 2.0 * std::cos(n * M_PI / (n + 1));
  // The Laplacian spectrum clusters at both ends, so 80 Krylov steps give
  // ~4 correct digits, not machine precision.
  EXPECT_NEAR(r.lambda_max, exact_max, 1e-3);
  EXPECT_NEAR(r.lambda_min, exact_min, 1e-3);
}

TEST(Lanczos, DiagonalSpectrumBounds) {
  CooMatrix coo(50, 50);
  for (index_t i = 0; i < 50; ++i) coo.add(i, i, static_cast<double>(i + 1));
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto r = lanczos_extreme(LinearOperator::from_csr(a), 50, 7);
  EXPECT_NEAR(r.lambda_min, 1.0, 1e-6);
  EXPECT_NEAR(r.lambda_max, 50.0, 1e-6);
}

TEST(Lanczos, EarlyTerminationOnInvariantSubspace) {
  // Identity: the Krylov space collapses after one step.
  const CsrMatrix a = gen::diagonal(30, 1.0);
  const auto r = lanczos_extreme(LinearOperator::from_csr(a), 20, 5);
  EXPECT_LE(r.iterations, 2);
  EXPECT_NEAR(r.lambda_min, 1.0, 1e-9);
  EXPECT_NEAR(r.lambda_max, 1.0, 1e-9);
}

TEST(Lanczos, ValidatesArgs) {
  const CsrMatrix a = gen::diagonal(4);
  EXPECT_THROW((void)lanczos_extreme(LinearOperator::from_csr(a), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace spmvopt::solvers
