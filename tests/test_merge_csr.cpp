// The merge-path kernel's adversarial battery (kernels/merge_csr.hpp):
// partition coverage and balance guarantees, carry fix-up on rows straddling
// many partitions, and the ULP-oracle sweep over the full fuzzer catalog —
// all across worker counts {1, 2, 3, 7, 16}, which straddle typical core
// counts and include primes that misalign with every fixture size.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/execution_engine.hpp"
#include "gen/generators.hpp"
#include "kernels/merge_csr.hpp"
#include "kernels/registry.hpp"
#include "kernels/team_body.hpp"
#include "optimize/optimized_spmv.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracle.hpp"

namespace spmvopt {
namespace {

using kernels::Compute;
using kernels::MergeCarry;
using kernels::MergePartition;

constexpr int kWorkerCounts[] = {1, 2, 3, 7, 16};

/// The structural invariants every partition must satisfy:
///   * the cuts sit exactly on the equally spaced diagonals, so the worker
///     ranges tile [0, rows+nnz) with no gap and no overlap;
///   * per-worker shares of rows+nnz differ by at most one diagonal;
///   * each worker's nonzero range lies inside its row range.
void expect_valid_partition(const MergePartition& part, const CsrMatrix& a,
                            int p) {
  ASSERT_EQ(part.nworkers(), p);
  ASSERT_EQ(part.row_bounds.size(), static_cast<std::size_t>(p) + 1);
  ASSERT_EQ(part.nnz_bounds.size(), static_cast<std::size_t>(p) + 1);
  EXPECT_EQ(part.row_bounds.front(), 0);
  EXPECT_EQ(part.nnz_bounds.front(), 0);
  EXPECT_EQ(part.row_bounds.back(), a.nrows());
  EXPECT_EQ(part.nnz_bounds.back(), a.nnz());
  const auto total =
      static_cast<std::int64_t>(a.nrows()) + static_cast<std::int64_t>(a.nnz());
  std::int64_t min_share = total + 1;
  std::int64_t max_share = 0;
  for (int k = 0; k <= p; ++k) {
    const std::size_t ku = static_cast<std::size_t>(k);
    // Exactly on diagonal k: coverage and no overlap follow, because
    // consecutive ranges share the cut and the diagonals are monotone.
    ASSERT_EQ(static_cast<std::int64_t>(part.row_bounds[ku]) +
                  part.nnz_bounds[ku],
              total * k / p);
    if (k == p) break;
    EXPECT_LE(part.row_bounds[ku], part.row_bounds[ku + 1]);
    EXPECT_LE(part.nnz_bounds[ku], part.nnz_bounds[ku + 1]);
    const std::int64_t share =
        (part.row_bounds[ku + 1] - part.row_bounds[ku]) +
        (part.nnz_bounds[ku + 1] - part.nnz_bounds[ku]);
    min_share = std::min(min_share, share);
    max_share = std::max(max_share, share);
    // The merge-path invariant: nonzeros [nnz_bounds[k], nnz_bounds[k+1])
    // all belong to rows [row_bounds[k], row_bounds[k+1]].
    EXPECT_LE(a.rowptr()[part.row_bounds[ku]], part.nnz_bounds[ku]);
    EXPECT_LE(part.nnz_bounds[ku + 1], a.rowptr()[part.row_bounds[ku + 1]] +
                                           (part.row_bounds[ku + 1] < a.nrows()
                                                ? a.row_nnz(part.row_bounds[ku + 1])
                                                : 0));
  }
  EXPECT_LE(max_share - min_share, 1) << "share spread exceeds one diagonal";
}

/// y = A*x through spmv_merge and compare against the ULP oracle.
void expect_merge_matches_oracle(const CsrMatrix& a, int p, Compute compute,
                                 bool prefetch) {
  const MergePartition part =
      kernels::merge_partition(a.rowptr(), a.nrows(), a.nnz(), p);
  MergeCarry carry;
  carry.resize(p);
  const std::vector<value_t> x = verify::adversarial_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), -42.0);
  kernels::spmv_merge(a, part, carry, x.data(), y.data(),
                      kernels::select_merge_span(compute, prefetch), 8);
  const verify::CompareReport rep = verify::check_spmv(a, x, y);
  EXPECT_TRUE(rep.pass()) << rep.to_string();
}

/// A deterministic pool covering the balance-adversarial shapes: uniform,
/// power-law, RMAT, monster rows with and without empty-row runs, and the
/// degenerate vectors.
std::vector<std::pair<std::string, CsrMatrix>> partition_pool() {
  std::vector<std::pair<std::string, CsrMatrix>> pool;
  pool.emplace_back("uniform", gen::random_uniform(300, 5, 1));
  pool.emplace_back("power-law", gen::power_law(500, 7, 1.6, 2));
  pool.emplace_back("rmat", gen::rmat(9, 8, 0.57, 0.19, 0.19, 3));
  pool.emplace_back("monster", gen::monster_row(700, 700, 2, 0, 4));
  pool.emplace_back("monster-empty-runs", gen::monster_row(500, 500, 1, 13, 5));
  pool.emplace_back("row-vector", gen::row_vector(4096, 300, 6));
  pool.emplace_back("col-vector", gen::col_vector(4096, 300, 7));
  pool.emplace_back("all-empty", [] {
    CooMatrix coo(64, 64);
    coo.compress();
    return CsrMatrix::from_coo(coo);
  }());
  return pool;
}

TEST(MergePartitionTest, CoversAndBalancesEveryPoolMatrix) {
  for (const auto& [name, a] : partition_pool())
    for (int p : kWorkerCounts) {
      SCOPED_TRACE(name + " x " + std::to_string(p) + " workers");
      expect_valid_partition(
          kernels::merge_partition(a.rowptr(), a.nrows(), a.nnz(), p), a, p);
    }
}

TEST(MergePartitionTest, SearchPinsCorners) {
  const CsrMatrix a = gen::power_law(200, 6, 1.7, 11);
  EXPECT_EQ(kernels::merge_path_search(0, a.rowptr(), a.nrows(), a.nnz()), 0);
  EXPECT_EQ(kernels::merge_path_search(a.nrows() + a.nnz(), a.rowptr(),
                                       a.nrows(), a.nnz()),
            a.nrows());
}

TEST(MergePartitionTest, MoreWorkersThanWork) {
  // 3x3 diagonal with 16 workers: most workers own nothing; the partition
  // must still tile exactly and the kernel must still be correct.
  const CsrMatrix a = gen::diagonal(3);
  expect_valid_partition(
      kernels::merge_partition(a.rowptr(), a.nrows(), a.nnz(), 16), a, 16);
  expect_merge_matches_oracle(a, 16, Compute::Scalar, false);
}

TEST(MergeCarryTest, RowSpanningManyPartitionsFixesUp) {
  // One row, 300 nonzeros, 7 and 16 workers: the row straddles every
  // partition, so every worker except the last contributes only carry.
  const CsrMatrix a = gen::row_vector(4096, 300, 21);
  for (int p : {3, 7, 16}) {
    SCOPED_TRACE(p);
    const MergePartition part =
        kernels::merge_partition(a.rowptr(), a.nrows(), a.nnz(), p);
    // The premise of the test: at least 3 partitions intersect row 0, i.e.
    // the middle workers own zero full rows.
    int intersecting = 0;
    for (int k = 0; k < p; ++k)
      if (part.nnz_bounds[static_cast<std::size_t>(k) + 1] >
          part.nnz_bounds[static_cast<std::size_t>(k)])
        ++intersecting;
    ASSERT_GE(intersecting, 3);
    expect_merge_matches_oracle(a, p, Compute::Scalar, false);
    expect_merge_matches_oracle(a, p, Compute::Vector, true);
  }
}

TEST(MergeCarryTest, MonsterRowAcrossManyPartitions) {
  // The monster row holds ~half of all nnz: with 16 workers it spans ≥ 3
  // partitions while normal rows surround it on both sides, exercising the
  // head-tail-carry interaction in one matrix.
  const CsrMatrix a = gen::monster_row(600, 600, 1, 0, 31);
  const MergePartition part =
      kernels::merge_partition(a.rowptr(), a.nrows(), a.nnz(), 16);
  int empty_row_ranges = 0;  // middle workers of a straddled row
  for (int k = 0; k < 16; ++k)
    if (part.row_bounds[static_cast<std::size_t>(k)] ==
        part.row_bounds[static_cast<std::size_t>(k) + 1])
      ++empty_row_ranges;
  ASSERT_GE(empty_row_ranges, 1);
  for (int p : kWorkerCounts) {
    SCOPED_TRACE(p);
    expect_merge_matches_oracle(a, p, Compute::Scalar, false);
  }
}

// Acceptance sweep: the merge kernel matches the ULP oracle on every fuzzer
// catalog entry (including the RMAT/power-law/monster fixtures the catalog
// now carries) at every worker count.
TEST(MergeFuzzSweep, EveryCatalogEntryEveryWorkerCount) {
  for (const verify::FuzzCase& fc : verify::adversarial_suite())
    for (int p : kWorkerCounts) {
      SCOPED_TRACE(fc.name + " x " + std::to_string(p) + " workers");
      expect_merge_matches_oracle(fc.matrix, p, Compute::Scalar, false);
      expect_merge_matches_oracle(fc.matrix, p, Compute::UnrollVector, true);
    }
}

TEST(MergeRegistry, BoundKernelMatchesOracle) {
  const auto& v = kernels::require_kernel("merge");
  EXPECT_FALSE(v.extension);
  for (int p : kWorkerCounts) {
    SCOPED_TRACE(p);
    const CsrMatrix a = gen::monster_row(500, 500, 2, 9, 17);
    const kernels::BoundSpmv bound = v.bind(a, p);
    ASSERT_TRUE(bound);
    const std::vector<value_t> x = gen::test_vector(a.ncols());
    std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), -1.0);
    bound(x.data(), y.data());
    const verify::CompareReport rep = verify::check_spmv(a, x, y);
    EXPECT_TRUE(rep.pass()) << rep.to_string();
  }
}

TEST(MergeEngine, TeamBodyMatchesOracleAndForkJoin) {
  // Engine-bound merge plan: spans run as team bodies with a barrier +
  // member-0 fix-up; results must match the oracle, and a batched run_many
  // must not smear carries across batch items.
  const CsrMatrix a = gen::monster_row(800, 800, 2, 11, 23);
  optimize::Plan plan;
  plan.merge_path = true;
  for (int nt : {1, 3, 4}) {
    SCOPED_TRACE(nt);
    engine::ExecutionEngine eng(
        engine::EngineConfig{.nthreads = nt, .pin = PinPolicy::None});
    const auto spmv = optimize::OptimizedSpmv::create(a, plan, eng);
    ASSERT_TRUE(spmv.plan().merge_path);
    const std::vector<value_t> x = gen::test_vector(a.ncols());
    std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), -1.0);
    spmv.run(x.data(), y.data());
    verify::CompareReport rep = verify::check_spmv(a, x, y);
    EXPECT_TRUE(rep.pass()) << rep.to_string();

    constexpr int kBatch = 3;
    std::vector<value_t> X;
    for (int r = 0; r < kBatch; ++r) {
      const auto xr = gen::test_vector(a.ncols(), 100 + static_cast<std::uint64_t>(r));
      X.insert(X.end(), xr.begin(), xr.end());
    }
    std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) * kBatch, -1.0);
    spmv.run_many(X.data(), Y.data(), kBatch);
    for (int r = 0; r < kBatch; ++r) {
      SCOPED_TRACE(r);
      rep = verify::check_spmv(
          a,
          std::span<const value_t>(X.data() + static_cast<std::size_t>(r) * a.ncols(),
                                   static_cast<std::size_t>(a.ncols())),
          std::span<const value_t>(Y.data() + static_cast<std::size_t>(r) * a.nrows(),
                                   static_cast<std::size_t>(a.nrows())));
      EXPECT_TRUE(rep.pass()) << rep.to_string();
    }
  }
}

TEST(MergeOptimized, ForkJoinPlanAcrossComputeVariants) {
  const CsrMatrix a = gen::power_law(600, 9, 1.5, 29);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  for (Compute c : {Compute::Scalar, Compute::Vector, Compute::UnrollVector})
    for (bool pf : {false, true}) {
      SCOPED_TRACE(static_cast<int>(c) * 2 + pf);
      optimize::Plan plan;
      plan.merge_path = true;
      plan.compute = c;
      plan.prefetch = pf;
      for (int t : {1, 2, 7}) {
        const auto spmv = optimize::OptimizedSpmv::create(a, plan, t);
        ASSERT_TRUE(spmv.plan().merge_path);
        std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), -1.0);
        spmv.run(x.data(), y.data());
        const verify::CompareReport rep = verify::check_spmv(a, x, y);
        EXPECT_TRUE(rep.pass()) << rep.to_string();
      }
    }
}

}  // namespace
}  // namespace spmvopt
