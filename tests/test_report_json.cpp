// Golden-file and round-trip tests for the bench-report JSON layer.
//
// The emitter's whole value is byte-stability: objects keep insertion order
// and numbers print in std::to_chars shortest form, so a serialized document
// can be diffed, golden-filed and compared across commits.  These tests pin
// that contract, plus the parser's error taxonomy.
#include "report/bench_doc.hpp"
#include "report/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace spmvopt::report {
namespace {

Json small_doc() {
  Json env = Json::object();
  env.set("cpu", "test-cpu").set("threads", 4);
  Json j = Json::object();
  j.set("schema_version", 1)
      .set("kind", "kernels")
      .set("environment", std::move(env))
      .set("rates", Json(Json::Array{Json(1.5), Json(2.0), Json(0.125)}));
  return j;
}

TEST(ReportJson, GoldenDump) {
  // Byte-exact: stable key order, 2-space indent, shortest-form numbers.
  const std::string expected =
      "{\n"
      "  \"schema_version\": 1,\n"
      "  \"kind\": \"kernels\",\n"
      "  \"environment\": {\n"
      "    \"cpu\": \"test-cpu\",\n"
      "    \"threads\": 4\n"
      "  },\n"
      "  \"rates\": [\n"
      "    1.5,\n"
      "    2,\n"
      "    0.125\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(small_doc().dump(), expected);
}

TEST(ReportJson, DumpIsDeterministic) {
  EXPECT_EQ(small_doc().dump(), small_doc().dump());
}

TEST(ReportJson, InsertionOrderIsPreserved) {
  Json j = Json::object();
  j.set("zebra", 1).set("alpha", 2).set("mu", 3);
  const std::string s = j.dump(-1);
  EXPECT_EQ(s, "{\"zebra\":1,\"alpha\":2,\"mu\":3}");
}

TEST(ReportJson, SetReplacesInPlaceWithoutReordering) {
  Json j = Json::object();
  j.set("a", 1).set("b", 2).set("a", 9);
  EXPECT_EQ(j.dump(-1), "{\"a\":9,\"b\":2}");
}

TEST(ReportJson, RoundTripPreservesValue) {
  const Json original = small_doc();
  auto parsed = Json::parse(original.dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), original);
}

TEST(ReportJson, NumbersRoundTripExactly) {
  // Shortest-form to_chars guarantees parse(dump(x)) == x bit-for-bit.
  const double values[] = {0.1, 1.0 / 3.0, 2.761325332290202, 1e-300,
                           9.007199254740993e15, -0.0};
  for (double v : values) {
    auto parsed = Json::parse(Json(v).dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().as_number(), v);
  }
}

TEST(ReportJson, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(Json(3.0).dump(-1), "3");
  EXPECT_EQ(Json(-17.0).dump(-1), "-17");
}

TEST(ReportJson, NonFiniteSerializesAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(-1), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(-1), "null");
}

TEST(ReportJson, StringEscaping) {
  auto parsed = Json::parse(Json("a\"b\\c\n\t\x01").dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "a\"b\\c\n\t\x01");
}

TEST(ReportJson, ParseRejectsTrailingGarbage) {
  auto r = Json::parse("{\"a\": 1} extra");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
}

TEST(ReportJson, ParseRejectsDuplicateKeys) {
  auto r = Json::parse("{\"a\": 1, \"a\": 2}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
}

TEST(ReportJson, ParseErrorNamesLocation) {
  auto r = Json::parse("{\n  \"a\": @\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message().find("line 2"), std::string::npos)
      << r.error().message();
}

TEST(ReportJson, ParseRejectsUnterminatedDocument) {
  EXPECT_FALSE(Json::parse("{\"a\": [1, 2").ok());
  EXPECT_FALSE(Json::parse("\"abc").ok());
  EXPECT_FALSE(Json::parse("").ok());
}

TEST(ReportJson, FindReturnsNullForMissingKey) {
  const Json j = small_doc();
  EXPECT_EQ(j.find("nope"), nullptr);
  ASSERT_NE(j.find("kind"), nullptr);
  EXPECT_EQ(j.find("kind")->as_string(), "kernels");
}

// --- BenchDocument serialization ------------------------------------------

BenchDocument sample_document() {
  BenchDocument doc;
  doc.kind = "kernels";
  doc.suite = "smoke";
  doc.environment.cpu_model = "test-cpu";
  doc.environment.logical_cpus = 8;
  doc.environment.threads = 4;
  doc.environment.llc_bytes = 1 << 20;
  doc.environment.iterations = 16;
  doc.environment.runs = 3;
  doc.environment.warmup = 1;
  doc.environment.suite_scale = 0.35;
  BenchResult r;
  r.matrix = "tiny-dense";
  r.family = "dense";
  r.classes = "{CMP}";
  r.variant = "baseline";
  r.plan = "baseline";
  r.threads = 4;
  r.nrows = 48;
  r.ncols = 48;
  r.nnz = 2304;
  r.gflops = 2.5;
  r.ci_lo = 2.25;
  r.ci_hi = 2.75;
  r.samples_kept = 3;
  doc.results.push_back(r);
  r.variant = "vec";
  r.plan = "vec";
  r.gflops = 5.0;
  r.ci_lo = 4.5;
  r.ci_hi = 5.5;
  doc.results.push_back(r);
  return doc;
}

TEST(ReportBenchDoc, RoundTripsThroughJson) {
  const BenchDocument doc = sample_document();
  auto back = document_from_json(document_to_json(doc));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), doc);
}

TEST(ReportBenchDoc, SerializedFormHasStableTopLevelOrder) {
  const std::string s = document_to_json(sample_document()).dump();
  const std::size_t schema = s.find("\"schema_version\"");
  const std::size_t kind = s.find("\"kind\"");
  const std::size_t env = s.find("\"environment\"");
  const std::size_t results = s.find("\"results\"");
  const std::size_t summary = s.find("\"summary\"");
  ASSERT_NE(schema, std::string::npos);
  EXPECT_LT(schema, kind);
  EXPECT_LT(kind, env);
  EXPECT_LT(env, results);
  EXPECT_LT(results, summary);
}

TEST(ReportBenchDoc, SchemaVersionIsEmitted) {
  const Json j = document_to_json(sample_document());
  ASSERT_NE(j.find("schema_version"), nullptr);
  EXPECT_EQ(j.find("schema_version")->as_number(), kBenchSchemaVersion);
}

TEST(ReportBenchDoc, EnvironmentBlockRoundTrips) {
  const BenchDocument doc = sample_document();
  auto env = environment_from_json(environment_to_json(doc.environment));
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env.value(), doc.environment);
}

TEST(ReportBenchDoc, SummaryIsDerivedNotParsed) {
  // Tampering with the serialized summary must not survive a load: the
  // summary is recomputed from `results` on every dump.
  Json j = document_to_json(sample_document());
  j.set("summary", Json::object());
  auto back = document_from_json(j);
  ASSERT_TRUE(back.ok());
  const Json again = document_to_json(back.value());
  ASSERT_NE(again.find("summary"), nullptr);
  EXPECT_FALSE(again.find("summary")->members().empty());
}

TEST(ReportBenchDoc, SummarizeUsesHarmonicMean) {
  BenchDocument doc = sample_document();
  doc.results[1].variant = "baseline";  // two baseline cells: 2.5 and 5.0
  const auto rows = summarize(doc);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].variant, "baseline");
  EXPECT_EQ(rows[0].matrices, 2);
  // H(2.5, 5) = 2 / (0.4 + 0.2) = 10/3, not the arithmetic 3.75.
  EXPECT_NEAR(rows[0].gflops_hmean, 10.0 / 3.0, 1e-12);
}

TEST(ReportBenchDoc, RejectsWrongSchemaVersion) {
  Json j = document_to_json(sample_document());
  j.set("schema_version", 999);
  auto r = document_from_json(j);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
}

TEST(ReportBenchDoc, RejectsMistypedResultField) {
  Json j = document_to_json(sample_document());
  j.members();  // precondition check
  Json* results = nullptr;
  for (auto& [k, v] : j.members())
    if (k == "results") results = &v;
  ASSERT_NE(results, nullptr);
  results->items()[0].set("gflops", "fast");
  auto r = document_from_json(j);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Format);
  EXPECT_NE(r.error().message().find("results[0]"), std::string::npos);
}

TEST(ReportBenchDoc, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "bench_roundtrip.json";
  const BenchDocument doc = sample_document();
  ASSERT_TRUE(save_bench_document(path, doc).ok());
  auto back = load_bench_document(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), doc);
}

TEST(ReportBenchDoc, LoadMissingFileIsIoError) {
  auto r = load_bench_document("/nonexistent/bench.json");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category(), ErrorCategory::Io);
}

}  // namespace
}  // namespace spmvopt::report
