#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "sparse/split_csr.hpp"

namespace spmvopt {
namespace {

TEST(SplitCsr, SplitsLongRowsOut) {
  const CsrMatrix a = gen::few_dense_rows(500, 3, 4, 300, 7);
  const SplitCsrMatrix s = SplitCsrMatrix::split(a, 100);
  EXPECT_GE(s.num_long_rows(), 4);
  // Every long row is empty in the short part.
  for (index_t k = 0; k < s.num_long_rows(); ++k)
    EXPECT_EQ(s.short_part().row_nnz(s.long_rows()[k]), 0);
  // Nonzeros are conserved.
  EXPECT_EQ(s.nnz(), a.nnz());
}

TEST(SplitCsr, MergeRoundTrips) {
  const CsrMatrix a = gen::few_dense_rows(400, 3, 3, 250, 9);
  const SplitCsrMatrix s = SplitCsrMatrix::split(a, 64);
  EXPECT_TRUE(s.merge().equals(a));
}

TEST(SplitCsr, NoLongRowsIsIdentity) {
  const CsrMatrix a = gen::stencil_2d_5pt(10, 10);  // max 5 nnz per row
  const SplitCsrMatrix s = SplitCsrMatrix::split(a, 100);
  EXPECT_EQ(s.num_long_rows(), 0);
  EXPECT_TRUE(s.short_part().equals(a));
  EXPECT_TRUE(s.merge().equals(a));
}

TEST(SplitCsr, AllRowsLong) {
  const CsrMatrix a = gen::dense(16);
  const SplitCsrMatrix s = SplitCsrMatrix::split(a, 1);
  EXPECT_EQ(s.num_long_rows(), 16);
  EXPECT_EQ(s.short_part().nnz(), 0);
  EXPECT_TRUE(s.merge().equals(a));
}

TEST(SplitCsr, ThresholdBoundary) {
  // Rows exactly at the threshold are long (>=).
  CooMatrix coo(2, 8);
  for (index_t j = 0; j < 4; ++j) coo.add(0, j, 1.0);
  for (index_t j = 0; j < 3; ++j) coo.add(1, j, 1.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const SplitCsrMatrix s = SplitCsrMatrix::split(a, 4);
  ASSERT_EQ(s.num_long_rows(), 1);
  EXPECT_EQ(s.long_rows()[0], 0);
}

TEST(SplitCsr, DefaultThresholdScalesWithAvg) {
  const CsrMatrix sparse = gen::stencil_2d_5pt(20, 20);  // avg < 5
  EXPECT_EQ(SplitCsrMatrix::default_threshold(sparse), 64);
  const CsrMatrix dense = gen::dense(128);  // avg 128 -> 8*128
  EXPECT_EQ(SplitCsrMatrix::default_threshold(dense), 1024);
}

TEST(SplitCsr, RejectsBadThreshold) {
  const CsrMatrix a = gen::diagonal(4);
  EXPECT_THROW((void)SplitCsrMatrix::split(a, 0), std::invalid_argument);
}

TEST(SplitCsr, LongRowDataMatchesOriginal) {
  const CsrMatrix a = gen::few_dense_rows(300, 3, 2, 200, 11);
  const SplitCsrMatrix s = SplitCsrMatrix::split(a, 50);
  ASSERT_GE(s.num_long_rows(), 1);
  const index_t row = s.long_rows()[0];
  const index_t lo = s.long_rowptr()[0];
  const index_t len = s.long_rowptr()[1] - lo;
  ASSERT_EQ(len, a.row_nnz(row));
  for (index_t k = 0; k < len; ++k) {
    EXPECT_EQ(s.long_colind()[lo + k], a.colind()[a.rowptr()[row] + k]);
    EXPECT_DOUBLE_EQ(s.long_values()[lo + k], a.values()[a.rowptr()[row] + k]);
  }
}

}  // namespace
}  // namespace spmvopt
