#include <gtest/gtest.h>

#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"
#include "ml/search.hpp"
#include "support/rng.hpp"

namespace spmvopt::ml {
namespace {

/// Single-label dataset separable on x[0] at 0.5.
Dataset separable_1d(int n) {
  Dataset ds;
  Xoshiro256 rng(1);
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform();
    ds.X.push_back({x, rng.uniform()});  // second feature is noise
    ds.Y.push_back({x > 0.5 ? 1 : 0});
  }
  return ds;
}

/// Two labels: label0 = x0 > 0.5, label1 = x1 > 0.5 (independent).
Dataset multilabel_2d(int n) {
  Dataset ds;
  Xoshiro256 rng(2);
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(), b = rng.uniform();
    ds.X.push_back({a, b});
    ds.Y.push_back({a > 0.5 ? 1 : 0, b > 0.5 ? 1 : 0});
  }
  return ds;
}

TEST(DecisionTree, FitsSeparableData) {
  const Dataset ds = separable_1d(200);
  DecisionTree tree;
  tree.fit(ds);
  for (std::size_t i = 0; i < ds.size(); ++i)
    EXPECT_EQ(tree.predict(ds.X[i]), ds.Y[i]) << "sample " << i;
}

TEST(DecisionTree, GeneralizesSeparableData) {
  DecisionTree tree;
  tree.fit(separable_1d(400));
  EXPECT_EQ(tree.predict({0.9, 0.1})[0], 1);
  EXPECT_EQ(tree.predict({0.1, 0.9})[0], 0);
}

TEST(DecisionTree, MultilabelPredictsBothLabels) {
  DecisionTree tree;
  tree.fit(multilabel_2d(500));
  EXPECT_EQ(tree.predict({0.9, 0.9}), (std::vector<int>{1, 1}));
  EXPECT_EQ(tree.predict({0.9, 0.1}), (std::vector<int>{1, 0}));
  EXPECT_EQ(tree.predict({0.1, 0.9}), (std::vector<int>{0, 1}));
  EXPECT_EQ(tree.predict({0.1, 0.1}), (std::vector<int>{0, 0}));
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  const Dataset ds = multilabel_2d(300);
  DecisionTree shallow;
  TreeParams p;
  p.max_depth = 1;
  shallow.fit(ds, p);
  EXPECT_LE(shallow.depth(), 1);
  EXPECT_LE(shallow.leaf_count(), 2u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const Dataset ds = separable_1d(50);
  TreeParams p;
  p.min_samples_leaf = 20;
  DecisionTree tree;
  tree.fit(ds, p);
  // With leaves >= 20 of 50 samples there can be at most 2 leaves.
  EXPECT_LE(tree.leaf_count(), 2u);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Dataset ds;
  for (int i = 0; i < 10; ++i) {
    ds.X.push_back({static_cast<double>(i)});
    ds.Y.push_back({1});
  }
  DecisionTree tree;
  tree.fit(ds);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({3.0})[0], 1);
}

TEST(DecisionTree, ConstantFeatureCannotSplit) {
  Dataset ds;
  for (int i = 0; i < 10; ++i) {
    ds.X.push_back({1.0});
    ds.Y.push_back({i % 2});
  }
  DecisionTree tree;
  tree.fit(ds);
  EXPECT_EQ(tree.node_count(), 1u);  // no valid split between equal values
}

TEST(DecisionTree, PredictValidatesArity) {
  DecisionTree tree;
  tree.fit(separable_1d(50));
  EXPECT_THROW((void)tree.predict({1.0}), std::invalid_argument);
}

TEST(DecisionTree, UntrainedThrows) {
  const DecisionTree tree;
  EXPECT_THROW((void)tree.predict({1.0, 2.0}), std::logic_error);
}

TEST(DecisionTree, RejectsBadDataset) {
  Dataset ds;
  ds.X.push_back({1.0});
  ds.Y.push_back({2});  // labels must be 0/1
  DecisionTree tree;
  EXPECT_THROW(tree.fit(ds), std::invalid_argument);

  Dataset ragged;
  ragged.X = {{1.0}, {1.0, 2.0}};
  ragged.Y = {{0}, {1}};
  EXPECT_THROW(tree.fit(ragged), std::invalid_argument);
}

TEST(DecisionTree, ProbaSumsPerLabel) {
  DecisionTree tree;
  tree.fit(multilabel_2d(100));
  const auto proba = tree.predict_proba({0.7, 0.2});
  ASSERT_EQ(proba.size(), 2u);
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DecisionTree, TextDumpMentionsFeatures) {
  DecisionTree tree;
  tree.fit(separable_1d(100));
  const std::string text = tree.to_text({"alpha", "beta"});
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("leaf"), std::string::npos);
}

TEST(CrossValidation, LooPerfectOnSeparable) {
  const CvScores s = leave_one_out(separable_1d(120));
  EXPECT_GT(s.exact, 0.9);
  EXPECT_GE(s.partial, s.exact);
}

TEST(CrossValidation, KFoldRunsAndScoresReasonably) {
  const CvScores s = k_fold(multilabel_2d(200), 5);
  EXPECT_GT(s.exact, 0.6);
  EXPECT_GE(s.partial, s.exact);
}

TEST(CrossValidation, RejectsBadArgs) {
  Dataset tiny;
  tiny.X = {{1.0}};
  tiny.Y = {{0}};
  EXPECT_THROW((void)leave_one_out(tiny), std::invalid_argument);
  EXPECT_THROW((void)k_fold(separable_1d(10), 1), std::invalid_argument);
}

TEST(GridSearch, FindsMaximumOnGrid) {
  // score = -(x-2)^2 - (y-3)^2, maximized at (2, 3).
  const GridPoint best = grid_search(
      {{0, 1, 2, 3}, {1, 2, 3, 4}}, [](const std::vector<double>& v) {
        return -(v[0] - 2) * (v[0] - 2) - (v[1] - 3) * (v[1] - 3);
      });
  EXPECT_DOUBLE_EQ(best.values[0], 2.0);
  EXPECT_DOUBLE_EQ(best.values[1], 3.0);
  EXPECT_DOUBLE_EQ(best.score, 0.0);
}

TEST(GridSearch, SingleAxis) {
  const GridPoint best = grid_search(
      {{1, 5, 9}}, [](const std::vector<double>& v) { return -v[0]; });
  EXPECT_DOUBLE_EQ(best.values[0], 1.0);
}

TEST(GridSearch, RejectsEmptyAxis) {
  EXPECT_THROW((void)grid_search({{}}, [](const std::vector<double>&) {
                 return 0.0;
               }),
               std::invalid_argument);
}

TEST(FeatureSearch, FindsInformativeFeature) {
  // Feature 1 is informative, features 0 and 2 are noise.
  Dataset ds;
  Xoshiro256 rng(4);
  for (int i = 0; i < 150; ++i) {
    const double sig = rng.uniform();
    ds.X.push_back({rng.uniform(), sig, rng.uniform()});
    ds.Y.push_back({sig > 0.5 ? 1 : 0});
  }
  const FeatureSubsetResult best = best_feature_subset(ds, {0, 1, 2}, 2);
  ASSERT_FALSE(best.features.empty());
  EXPECT_EQ(best.features[0], 1);  // smallest subset achieving top score
  EXPECT_GT(best.scores.exact, 0.9);
}

TEST(FeatureSearch, RejectsBadColumns) {
  const Dataset ds = separable_1d(20);
  EXPECT_THROW((void)best_feature_subset(ds, {5}, 1), std::invalid_argument);
  EXPECT_THROW((void)best_feature_subset(ds, {}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace spmvopt::ml
