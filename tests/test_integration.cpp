// End-to-end pipeline tests: generate → classify → optimize → solve, the
// exact workflow a downstream user of the library runs.
#include <gtest/gtest.h>

#include <cmath>

#include "classify/feature_classifier.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "mklcompat/inspector_executor.hpp"
#include "optimize/optimizers.hpp"
#include "solvers/krylov.hpp"
#include "solvers/pagerank.hpp"

namespace spmvopt {
namespace {

optimize::OptimizerConfig fast_config() {
  optimize::OptimizerConfig cfg;
  cfg.nthreads = 2;
  cfg.measure.iterations = 2;
  cfg.measure.runs = 1;
  cfg.measure.warmup = 0;
  return cfg;
}

TEST(Integration, CgOnProfileOptimizedSpmvMatchesBaselineSolution) {
  const CsrMatrix a = gen::stencil_2d_5pt(24, 24);
  const std::vector<value_t> x_true = gen::test_vector(a.ncols(), 55);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);

  const auto out = optimize::optimize_profile(a, fast_config());
  const auto op = solvers::LinearOperator::from_optimized(out.spmv);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  const auto r = solvers::cg(op, b, x);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Integration, FullFeatureGuidedPipeline) {
  // Offline: train from a pool labeled by the profile-guided classifier.
  std::vector<CsrMatrix> pool;
  for (const auto& e : gen::test_suite()) pool.push_back(e.make());
  perf::BoundsConfig bounds_cfg;
  bounds_cfg.measure.iterations = 2;
  bounds_cfg.measure.runs = 1;
  bounds_cfg.measure.warmup = 0;
  bounds_cfg.nthreads = 2;
  const auto trained = classify::train_from_pool(
      pool, features::onnz_feature_set(), {}, bounds_cfg);

  // Online: optimize an unseen matrix and verify correctness.
  const CsrMatrix a = gen::power_law(1500, 9, 1.9, 321);
  const auto out = optimize::optimize_feature(a, trained.classifier,
                                              fast_config());
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), std::nan(""));
  out.spmv.run(x.data(), y.data());
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
}

TEST(Integration, PageRankOnOptimizedTransitionMatrix) {
  const CsrMatrix g = gen::rmat(9, 6, 0.55, 0.2, 0.15, 17);
  const CsrMatrix p = solvers::transition_matrix(g);

  const auto out = optimize::optimize_trivial_single(p, fast_config());
  const auto op = solvers::LinearOperator::from_optimized(out.spmv);
  const auto opt_result = solvers::pagerank_with_operator(
      op, solvers::dangling_nodes(g), g.nrows());
  const auto ref_result = solvers::pagerank(g);
  ASSERT_EQ(opt_result.scores.size(), ref_result.scores.size());
  for (std::size_t i = 0; i < ref_result.scores.size(); ++i)
    EXPECT_NEAR(opt_result.scores[i], ref_result.scores[i], 1e-8);
}

TEST(Integration, AllOptimizersAgreeNumerically) {
  const CsrMatrix a = gen::few_dense_rows(900, 3, 4, 600, 77);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);

  const auto cfg = fast_config();
  std::vector<optimize::OptimizeOutcome> outcomes;
  outcomes.push_back(optimize::optimize_profile(a, cfg));
  outcomes.push_back(optimize::optimize_trivial_single(a, cfg));
  outcomes.push_back(optimize::optimize_trivial_combined(a, cfg));
  outcomes.push_back(optimize::optimize_oracle(a, cfg));
  for (const auto& out : outcomes) {
    SCOPED_TRACE(out.plan.to_string());
    std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
    out.spmv.run(x.data(), y.data());
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], expected[i],
                  1e-9 * std::max(1.0, std::abs(expected[i])));
  }
}

TEST(Integration, AmortizationFormulaOfTableV) {
  // N_iters,min = t_pre / (t_mkl - t_opt): with synthetic numbers the
  // formula must reproduce hand-computed iterations.
  const double t_pre = 0.10, t_mkl = 0.002, t_opt = 0.001;
  const double n_iters = t_pre / (t_mkl - t_opt);
  EXPECT_NEAR(n_iters, 100.0, 1e-9);
}

TEST(Integration, InspectorExecutorInSolverLoop) {
  const CsrMatrix a =
      gen::make_diagonally_dominant(gen::random_uniform(300, 5, 41), 2.0);
  const auto ie = mklcompat::InspectorExecutorSpmv::analyze(a, {}, 2);
  solvers::LinearOperator op(
      a.nrows(), a.ncols(),
      [&ie](const value_t* x, value_t* y) { ie.execute(x, y); });
  const std::vector<value_t> x_true = gen::test_vector(a.ncols(), 5);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  const auto r = solvers::bicgstab(op, b, x);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

}  // namespace
}  // namespace spmvopt
