#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "optimize/optimized_spmv.hpp"
#include "support/rng.hpp"

namespace spmvopt::optimize {
namespace {

using kernels::Compute;
using kernels::Sched;

void expect_correct(const CsrMatrix& a, const OptimizedSpmv& spmv) {
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()), std::nan(""));
  spmv.run(x.data(), y.data());
  // The tolerance follows the plan's value mode: f32 storage rounds each
  // matrix value to ~2^-24 relative, and full-f32 additionally accumulates
  // in float (test matrices keep row sums well-conditioned, so a loose
  // relative band suffices here; the ULP-principled check lives in the
  // differential suite).
  double tol = 1e-9;
  if (spmv.precision() == Precision::F32F64) tol = 1e-5;
  if (spmv.precision() == Precision::F32) tol = 1e-3;
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_NEAR(y[i], expected[i], tol * std::max(1.0, std::abs(expected[i])));
}

TEST(OptimizedSpmv, EveryEnumeratedPlanIsCorrectOnEveryFamily) {
  for (const auto& entry : gen::test_suite()) {
    SCOPED_TRACE(entry.name);
    const CsrMatrix a = entry.make();
    for (const Plan& plan : enumerate_plans(a)) {
      SCOPED_TRACE(plan.to_string());
      expect_correct(a, OptimizedSpmv::create(a, plan, 3));
    }
  }
}

TEST(OptimizedSpmv, RecordsPreprocessingTime) {
  const CsrMatrix a = gen::stencil_2d_5pt(64, 64);
  Plan plan;
  plan.delta = true;
  const OptimizedSpmv spmv = OptimizedSpmv::create(a, plan, 2);
  EXPECT_GT(spmv.preprocessing_seconds(), 0.0);
}

TEST(OptimizedSpmv, DeltaFallsBackWhenNotEncodable) {
  CooMatrix coo(2, 100000);
  coo.add(0, 0, 1.0);
  coo.add(0, 99999, 2.0);
  coo.add(1, 5, 3.0);
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Plan plan;
  plan.delta = true;
  plan.compute = Compute::Vector;
  const OptimizedSpmv spmv = OptimizedSpmv::create(a, plan, 2);
  EXPECT_FALSE(spmv.plan().delta);                    // fell back
  EXPECT_EQ(spmv.plan().compute, Compute::Vector);    // rest survives
  expect_correct(a, spmv);
}

TEST(OptimizedSpmv, SplitPlusDeltaRejected) {
  const CsrMatrix a = gen::dense(8);
  Plan bad;
  bad.delta = true;
  bad.split_long_rows = true;
  EXPECT_THROW((void)OptimizedSpmv::create(a, bad, 1), std::invalid_argument);
}

TEST(OptimizedSpmv, CheckedRunValidatesSizes) {
  const CsrMatrix a = gen::stencil_2d_5pt(8, 8);
  const OptimizedSpmv spmv = OptimizedSpmv::create(a, Plan{}, 1);
  std::vector<value_t> x(static_cast<std::size_t>(a.ncols()) - 1);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  EXPECT_THROW(spmv.run(x, y), std::invalid_argument);
}

TEST(OptimizedSpmv, DeltaPlanShrinksFormatBytes) {
  const CsrMatrix a = gen::dense(64);
  Plan plan;
  plan.delta = true;
  const OptimizedSpmv spmv = OptimizedSpmv::create(a, plan, 1);
  ASSERT_TRUE(spmv.plan().delta);
  EXPECT_LT(spmv.format_bytes(), a.format_bytes());
}

TEST(OptimizedSpmv, DegenerateShapesThroughEveryPlan) {
  // Single row, single column, a lone huge row, and a 1x1 matrix.
  std::vector<CsrMatrix> shapes;
  {
    CooMatrix one_row(1, 300);
    for (index_t j = 0; j < 300; j += 3) one_row.add(0, j, 1.0 + j);
    one_row.compress();
    shapes.push_back(CsrMatrix::from_coo(one_row));
  }
  {
    CooMatrix one_col(300, 1);
    for (index_t i = 0; i < 300; i += 2) one_col.add(i, 0, 2.0 + i);
    one_col.compress();
    shapes.push_back(CsrMatrix::from_coo(one_col));
  }
  {
    CooMatrix tiny(1, 1);
    tiny.add(0, 0, 3.5);
    tiny.compress();
    shapes.push_back(CsrMatrix::from_coo(tiny));
  }
  for (const CsrMatrix& a : shapes) {
    SCOPED_TRACE(std::to_string(a.nrows()) + "x" + std::to_string(a.ncols()));
    for (const Plan& plan : enumerate_plans(a)) {
      SCOPED_TRACE(plan.to_string());
      expect_correct(a, OptimizedSpmv::create(a, plan, 2));
    }
  }
}

TEST(OptimizedSpmv, RectangularThroughEveryPlan) {
  // Wide and tall rectangular matrices exercise the nrows != ncols paths of
  // every format conversion.
  CooMatrix wide(60, 900);
  CooMatrix tall(900, 60);
  Xoshiro256 rng(5);
  for (int k = 0; k < 700; ++k) {
    wide.add(static_cast<index_t>(rng.bounded(60)),
             static_cast<index_t>(rng.bounded(900)), rng.uniform(0.1, 1.0));
    tall.add(static_cast<index_t>(rng.bounded(900)),
             static_cast<index_t>(rng.bounded(60)), rng.uniform(0.1, 1.0));
  }
  wide.compress();
  tall.compress();
  for (const CsrMatrix& a :
       {CsrMatrix::from_coo(wide), CsrMatrix::from_coo(tall)}) {
    SCOPED_TRACE(std::to_string(a.nrows()) + "x" + std::to_string(a.ncols()));
    for (const Plan& plan : enumerate_plans(a)) {
      SCOPED_TRACE(plan.to_string());
      expect_correct(a, OptimizedSpmv::create(a, plan, 3));
    }
  }
}

TEST(OptimizedSpmv, RepeatedRunsAreIdempotent) {
  const CsrMatrix a = gen::power_law(400, 8, 2.0, 5);
  Plan plan;
  plan.prefetch = true;
  plan.compute = Compute::Vector;
  const OptimizedSpmv spmv = OptimizedSpmv::create(a, plan, 3);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y1(static_cast<std::size_t>(a.nrows()));
  std::vector<value_t> y2(static_cast<std::size_t>(a.nrows()));
  spmv.run(x.data(), y1.data());
  spmv.run(x.data(), y2.data());
  EXPECT_EQ(y1, y2);
}

}  // namespace
}  // namespace spmvopt::optimize
