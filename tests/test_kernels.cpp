// Correctness of every SpMV kernel variant against the serial dense-checked
// reference, swept over the structural families of the test suite
// (TEST_P: kernel x matrix).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "kernels/compose.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmv.hpp"
#include "support/cpu_info.hpp"

namespace spmvopt {
namespace {

using kernels::Compute;
using kernels::Sched;

struct NamedKernel {
  std::string name;
  // Runs y = A*x with every preprocessing the kernel needs done inside.
  std::function<void(const CsrMatrix&, const value_t*, value_t*)> run;
};

std::vector<NamedKernel> all_kernels() {
  const int threads = 4;  // oversubscription is fine for correctness
  std::vector<NamedKernel> ks;

  ks.push_back({"serial", [](const CsrMatrix& a, const value_t* x, value_t* y) {
                  kernels::spmv_serial(a, x, y);
                }});
  ks.push_back({"omp_static", [](const CsrMatrix& a, const value_t* x, value_t* y) {
                  kernels::spmv_omp_static(a, x, y);
                }});
  ks.push_back({"balanced", [threads](const CsrMatrix& a, const value_t* x, value_t* y) {
                  const auto part =
                      balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
                  kernels::spmv_balanced(a, part, x, y);
                }});
  ks.push_back({"dynamic", [](const CsrMatrix& a, const value_t* x, value_t* y) {
                  kernels::spmv_omp_dynamic(a, x, y, 16);
                }});
  ks.push_back({"guided", [](const CsrMatrix& a, const value_t* x, value_t* y) {
                  kernels::spmv_omp_guided(a, x, y);
                }});
  ks.push_back({"auto", [](const CsrMatrix& a, const value_t* x, value_t* y) {
                  kernels::spmv_omp_auto(a, x, y);
                }});
  ks.push_back({"prefetch", [threads](const CsrMatrix& a, const value_t* x, value_t* y) {
                  const auto part =
                      balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
                  kernels::spmv_prefetch(a, part, x, y, 8);
                }});
  ks.push_back({"vector", [threads](const CsrMatrix& a, const value_t* x, value_t* y) {
                  const auto part =
                      balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
                  kernels::spmv_vector(a, part, x, y);
                }});
  ks.push_back({"unroll_vector", [threads](const CsrMatrix& a, const value_t* x, value_t* y) {
                  const auto part =
                      balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
                  kernels::spmv_unroll_vector(a, part, x, y);
                }});
  ks.push_back({"delta", [threads](const CsrMatrix& a, const value_t* x, value_t* y) {
                  const auto d = DeltaCsrMatrix::encode(a);
                  ASSERT_TRUE(d.has_value());
                  const auto part =
                      balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
                  kernels::spmv_delta(*d, part, x, y);
                }});
  ks.push_back({"delta_vector", [threads](const CsrMatrix& a, const value_t* x, value_t* y) {
                  const auto d = DeltaCsrMatrix::encode(a);
                  ASSERT_TRUE(d.has_value());
                  const auto part =
                      balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
                  kernels::spmv_delta_vector(*d, part, x, y);
                }});
  ks.push_back({"split", [threads](const CsrMatrix& a, const value_t* x, value_t* y) {
                  const auto s = SplitCsrMatrix::split(a, 32);
                  const auto part = balanced_nnz_partition(
                      s.short_part().rowptr(), s.short_part().nrows(), threads);
                  kernels::spmv_split(s, part, x, y);
                }});
  return ks;
}

/// All composed (sched x pf x compute) template instantiations.
std::vector<NamedKernel> composed_kernels() {
  std::vector<NamedKernel> ks;
  for (auto [sched, sname] : {std::pair{Sched::BalancedStatic, "bal"},
                              std::pair{Sched::Auto, "auto"},
                              std::pair{Sched::Dynamic, "dyn"}}) {
    for (bool pf : {false, true}) {
      for (auto [compute, cname] : {std::pair{Compute::Scalar, "scalar"},
                                    std::pair{Compute::Vector, "vec"},
                                    std::pair{Compute::UnrollVector, "unroll"}}) {
        const std::string name = std::string("composed_") + sname +
                                 (pf ? "_pf_" : "_") + cname;
        auto fn = kernels::select_csr_kernel(sched, pf, compute);
        ks.push_back({name, [fn](const CsrMatrix& a, const value_t* x, value_t* y) {
                        const auto part =
                            balanced_nnz_partition(a.rowptr(), a.nrows(), 4);
                        fn(a, part, x, y, 8, 16);
                      }});
        auto dfn = kernels::select_delta_kernel(sched, pf, compute);
        ks.push_back({"delta_" + name,
                      [dfn](const CsrMatrix& a, const value_t* x, value_t* y) {
                        const auto d = DeltaCsrMatrix::encode(a);
                        ASSERT_TRUE(d.has_value());
                        const auto part =
                            balanced_nnz_partition(a.rowptr(), a.nrows(), 4);
                        dfn(*d, part, x, y, 8, 16);
                      }});
      }
    }
  }
  return ks;
}

struct KernelCase {
  std::string kernel;
  std::string matrix;
};

class KernelCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

std::vector<NamedKernel>& kernel_pool() {
  static std::vector<NamedKernel> pool = [] {
    auto ks = all_kernels();
    auto composed = composed_kernels();
    ks.insert(ks.end(), composed.begin(), composed.end());
    return ks;
  }();
  return pool;
}

std::vector<gen::SuiteEntry>& matrix_pool() {
  static std::vector<gen::SuiteEntry> pool = gen::test_suite();
  return pool;
}

TEST_P(KernelCorrectness, MatchesReference) {
  const auto [ki, mi] = GetParam();
  const NamedKernel& kernel = kernel_pool()[static_cast<std::size_t>(ki)];
  const gen::SuiteEntry& entry = matrix_pool()[static_cast<std::size_t>(mi)];
  SCOPED_TRACE(kernel.name + " on " + entry.name);

  const CsrMatrix a = entry.make();
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);

  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()),
                         std::nan(""));  // poison: kernels must write all rows
  kernel.run(a, x.data(), y.data());

  for (std::size_t i = 0; i < y.size(); ++i) {
    const double tol = 1e-9 * std::max(1.0, std::abs(expected[i]));
    ASSERT_NEAR(y[i], expected[i], tol) << "row " << i;
  }
}

std::string case_name(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  const auto [ki, mi] = info.param;
  std::string n = kernel_pool()[static_cast<std::size_t>(ki)].name + "_" +
                  matrix_pool()[static_cast<std::size_t>(mi)].name;
  for (char& c : n)
    if (c == '-') c = '_';
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllMatrices, KernelCorrectness,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(kernel_pool().size())),
        ::testing::Range(0, static_cast<int>(matrix_pool().size()))),
    case_name);

TEST(Kernels, RegularAccessCopyHasRowIndexColumns) {
  const CsrMatrix a = gen::random_uniform(100, 5, 3);
  const CsrMatrix r = kernels::make_regular_access_copy(a);
  EXPECT_EQ(r.nnz(), a.nnz());
  for (index_t i = 0; i < r.nrows(); ++i)
    for (index_t j = r.rowptr()[i]; j < r.rowptr()[i + 1]; ++j)
      EXPECT_EQ(r.colind()[j], i);
}

TEST(Kernels, NoIndexKernelComputesRowSumTimesXi) {
  const CsrMatrix a = gen::random_uniform(50, 4, 9);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), 2);
  kernels::spmv_noindex(a, part, x.data(), y.data());
  for (index_t i = 0; i < a.nrows(); ++i) {
    value_t sum = 0.0;
    for (index_t j = a.rowptr()[i]; j < a.rowptr()[i + 1]; ++j)
      sum += a.values()[j];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                sum * x[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Kernels, BalancedRecordsPerThreadTimes) {
  const CsrMatrix a = gen::stencil_2d_5pt(64, 64);
  const int threads = 4;
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  std::vector<double> tsec(threads, -1.0);
  kernels::spmv_balanced(a, part, x.data(), y.data(), tsec.data());
  for (double t : tsec) EXPECT_GE(t, 0.0);
}

TEST(Kernels, SplitComposedMatchesReference) {
  const CsrMatrix a = gen::few_dense_rows(600, 3, 5, 400, 13);
  const auto s = SplitCsrMatrix::split(a, SplitCsrMatrix::default_threshold(a));
  const auto part = balanced_nnz_partition(s.short_part().rowptr(),
                                           s.short_part().nrows(), 4);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> expected(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, expected);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  for (bool pf : {false, true})
    for (Compute c : {Compute::Scalar, Compute::Vector, Compute::UnrollVector}) {
      auto phase1 = kernels::select_csr_kernel(Sched::BalancedStatic, pf, c);
      kernels::spmv_split_composed(s, part, x.data(), y.data(), phase1, 8, 16);
      for (std::size_t i = 0; i < y.size(); ++i)
        ASSERT_NEAR(y[i], expected[i], 1e-9 * std::max(1.0, std::abs(expected[i])));
    }
}

TEST(Kernels, RegistryNamesAreSortedAndComplete) {
  // kernel_names() is user-facing (CLI/server "unknown kernel" replies) and
  // must be deterministic and lexicographically sorted, independent of
  // registration order.
  const std::string joined = kernels::kernel_names();
  std::vector<std::string> names;
  std::size_t pos = 0;
  while (pos <= joined.size()) {
    const std::size_t comma = std::min(joined.find(", ", pos), joined.size());
    names.push_back(joined.substr(pos, comma - pos));
    pos = comma + 2;
  }
  ASSERT_EQ(names.size(), kernels::registry().size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Every registry entry appears, and every listed name resolves back.
  for (const auto& v : kernels::registry())
    EXPECT_NE(std::find(names.begin(), names.end(), v.name), names.end())
        << v.name << " missing from kernel_names()";
  for (const auto& n : names)
    EXPECT_NE(kernels::find_kernel(n), nullptr) << n;
  // Pin the full listing: growing the registry must update this test, so the
  // variant count and the sorted order stay deterministic for CLI/server
  // error-message consumers.  The spmm.* blocked variants register per
  // compiled ISA, so the expected set is built under the same macros the
  // registry itself uses (the -march capability guard: compile-time support
  // IS the availability condition for these names).
  std::vector<std::string> expected{
      "balanced",       "bcsr",          "delta",
      "delta_vector",   "merge",         "omp_auto",
      "omp_dynamic",    "omp_guided",    "omp_static",
      "prefetch",       "sell",          "serial",
      "split",          "spmm.scalar.f32", "spmm.scalar.f32x64",
      "spmm.scalar.f64", "sym",          "unroll_vector",
      "vector"};
#if defined(__AVX2__)
  expected.insert(expected.end(),
                  {"spmm.avx2.f32", "spmm.avx2.f32x64", "spmm.avx2.f64"});
#endif
#if defined(__AVX512F__)
  expected.insert(expected.end(), {"spmm.avx512.f32", "spmm.avx512.f32x64",
                                   "spmm.avx512.f64"});
#endif
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(kernels::registry().size(), expected.size());
  EXPECT_EQ(names, expected);
  // Every spmm.* variant carries a batched binding and a matching precision
  // suffix; every non-spmm variant stays single-vector f64.
  for (const auto& v : kernels::registry()) {
    const bool is_spmm = std::string_view(v.name).starts_with("spmm.");
    EXPECT_EQ(v.bind_spmm != nullptr, is_spmm) << v.name;
    if (!is_spmm) EXPECT_EQ(v.prec, Precision::F64) << v.name;
    if (is_spmm)
      EXPECT_TRUE(std::string_view(v.name).ends_with(
          std::string(".") + precision_name(v.prec)))
          << v.name;
  }
}

TEST(Kernels, UnknownNameErrorPath) {
  EXPECT_EQ(kernels::find_kernel("no_such_kernel"), nullptr);
  EXPECT_EQ(kernels::find_kernel(""), nullptr);
  // The prefix of a valid name must not resolve (exact match only).
  EXPECT_EQ(kernels::find_kernel("merg"), nullptr);
  EXPECT_EQ(kernels::find_kernel("merge_"), nullptr);
  EXPECT_NO_THROW(static_cast<void>(kernels::require_kernel("merge")));
  try {
    static_cast<void>(kernels::require_kernel("no_such_kernel"));
    FAIL() << "require_kernel must throw on unknown names";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // The message names the offender and lists the full sorted valid set.
    EXPECT_NE(msg.find("no_such_kernel"), std::string::npos) << msg;
    EXPECT_NE(msg.find(kernels::kernel_names()), std::string::npos) << msg;
  }
}

TEST(Kernels, EmptyMatrixYieldsZeroVector) {
  CooMatrix coo(5, 5);  // no entries at all
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<value_t> x(5, 1.0);
  std::vector<value_t> y(5, 42.0);
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), 2);
  kernels::spmv_balanced(a, part, x.data(), y.data());
  for (value_t v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace spmvopt
