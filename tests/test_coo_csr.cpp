#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace spmvopt {
namespace {

CooMatrix small_coo() {
  // 3x4:
  //   [ 1 0 2 0 ]
  //   [ 0 0 0 0 ]
  //   [ 3 4 0 5 ]
  CooMatrix coo(3, 4);
  coo.add(2, 3, 5.0);
  coo.add(0, 0, 1.0);
  coo.add(2, 0, 3.0);
  coo.add(0, 2, 2.0);
  coo.add(2, 1, 4.0);
  return coo;
}

TEST(Coo, AddValidatesRange) {
  CooMatrix coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(coo.add(0, -1, 1.0), std::out_of_range);
}

TEST(Coo, NegativeDimensionThrows) {
  EXPECT_THROW(CooMatrix(-1, 2), std::invalid_argument);
}

TEST(Coo, CompressSortsRowMajor) {
  CooMatrix coo = small_coo();
  coo.compress();
  const auto& e = coo.entries();
  ASSERT_EQ(e.size(), 5u);
  for (std::size_t i = 1; i < e.size(); ++i) {
    const bool ordered = e[i - 1].row < e[i].row ||
                         (e[i - 1].row == e[i].row && e[i - 1].col < e[i].col);
    EXPECT_TRUE(ordered);
  }
}

TEST(Coo, CompressSumsDuplicates) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(1, 1, 1.0);
  coo.compress();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 3.5);
}

TEST(Coo, AddSymmetricMirrorsOffDiagonal) {
  CooMatrix coo(3, 3);
  coo.add_symmetric(0, 1, 2.0);
  coo.add_symmetric(2, 2, 5.0);
  coo.compress();
  EXPECT_EQ(coo.nnz(), 3u);  // (0,1), (1,0), (2,2)
}

TEST(Csr, FromCooMatchesDense) {
  CooMatrix coo = small_coo();
  coo.compress();
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  EXPECT_EQ(csr.nrows(), 3);
  EXPECT_EQ(csr.ncols(), 4);
  EXPECT_EQ(csr.nnz(), 5);
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(1), 0);
  EXPECT_EQ(csr.row_nnz(2), 3);

  const DenseMatrix d = DenseMatrix::from_csr(csr);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(d.at(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(d.at(1, 1), 0.0);
}

TEST(Csr, FromCooHandlesUnsortedInput) {
  CooMatrix coo(2, 2);
  coo.add(1, 1, 4.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 3.0);
  coo.add(0, 0, 1.0);
  coo.compress();
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  // Columns sorted within rows.
  EXPECT_EQ(csr.colind()[0], 0);
  EXPECT_EQ(csr.colind()[1], 1);
  EXPECT_DOUBLE_EQ(csr.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(csr.values()[3], 4.0);
}

TEST(Csr, ValidationCatchesBadRowptr) {
  aligned_vector<index_t> rowptr{0, 2, 1};  // non-monotone
  aligned_vector<index_t> colind{0, 1};
  aligned_vector<value_t> values{1.0, 2.0};
  EXPECT_THROW(CsrMatrix(2, 2, rowptr, colind, values), std::invalid_argument);
}

TEST(Csr, ValidationCatchesBadColind) {
  aligned_vector<index_t> rowptr{0, 1};
  aligned_vector<index_t> colind{5};  // out of range for ncols=2
  aligned_vector<value_t> values{1.0};
  EXPECT_THROW(CsrMatrix(1, 2, rowptr, colind, values), std::invalid_argument);
}

TEST(Csr, ValidationCatchesSizeMismatch) {
  aligned_vector<index_t> rowptr{0, 2};
  aligned_vector<index_t> colind{0};  // nnz says 2
  aligned_vector<value_t> values{1.0, 2.0};
  EXPECT_THROW(CsrMatrix(1, 2, rowptr, colind, values), std::invalid_argument);
}

TEST(Csr, MultiplyMatchesDense) {
  CooMatrix coo = small_coo();
  coo.compress();
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  const DenseMatrix dense = DenseMatrix::from_csr(csr);
  const std::vector<value_t> x{1.0, 2.0, 3.0, 4.0};
  std::vector<value_t> y1(3), y2(3);
  csr.multiply(x, y1);
  dense.multiply(x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)]);
}

TEST(Csr, MultiplyChecksSizes) {
  CooMatrix coo = small_coo();
  coo.compress();
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  std::vector<value_t> x(3), y(3);  // x should be 4
  EXPECT_THROW(csr.multiply(x, y), std::invalid_argument);
}

TEST(Csr, FormatBytes) {
  CooMatrix coo = small_coo();
  coo.compress();
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  // rowptr: 4 * 4B, colind: 5 * 4B, values: 5 * 8B.
  EXPECT_EQ(csr.format_bytes(), 4u * 4 + 5u * 4 + 5u * 8);
  EXPECT_EQ(csr.values_bytes(), 5u * 8);
  EXPECT_EQ(csr.working_set_bytes(), csr.format_bytes() + (4u + 3u) * 8);
}

TEST(Csr, IsSymmetric) {
  CooMatrix coo(3, 3);
  coo.add_symmetric(0, 1, 2.0);
  coo.add_symmetric(1, 2, 3.0);
  coo.add(0, 0, 1.0);
  coo.compress();
  const CsrMatrix sym = CsrMatrix::from_coo(coo);
  EXPECT_TRUE(sym.is_symmetric());

  CooMatrix coo2(2, 2);
  coo2.add(0, 1, 1.0);
  coo2.compress();
  EXPECT_FALSE(CsrMatrix::from_coo(coo2).is_symmetric());
}

TEST(Csr, EqualsIsDeep) {
  CooMatrix coo = small_coo();
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const CsrMatrix b = CsrMatrix::from_coo(coo);
  EXPECT_TRUE(a.equals(b));
}

TEST(Dense, ToCsrRoundTrip) {
  DenseMatrix d(2, 3);
  d.at(0, 1) = 2.0;
  d.at(1, 2) = -1.0;
  const CsrMatrix csr = d.to_csr();
  EXPECT_EQ(csr.nnz(), 2);
  const DenseMatrix back = DenseMatrix::from_csr(csr);
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(back.at(i, j), d.at(i, j));
}

TEST(Dense, DropTolerance) {
  DenseMatrix d(1, 3);
  d.at(0, 0) = 1e-12;
  d.at(0, 1) = 1.0;
  EXPECT_EQ(d.to_csr(1e-9).nnz(), 1);
}

}  // namespace
}  // namespace spmvopt
