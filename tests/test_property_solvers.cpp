// Property tests routing SpMM and the iterative solvers through the ULP
// oracle (src/verify/).
//
// The solver suites elsewhere assert convergence with fixed EXPECT_NEAR
// tolerances; here every SpMV a solver issues is additionally checked
// against the compensated-summation reference, so a kernel that converges
// to the right answer *by accident* (e.g. an error that a symmetric matrix
// masks) still fails.  SpMM is checked per right-hand-side column against
// the same oracle instead of against a sibling kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "kernels/spmm.hpp"
#include "optimize/optimized_spmv.hpp"
#include "optimize/plan.hpp"
#include "solvers/krylov.hpp"
#include "solvers/stationary.hpp"
#include "support/rng.hpp"
#include "verify/oracle.hpp"

namespace spmvopt {
namespace {

std::vector<value_t> random_block(index_t n, index_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<value_t> X(static_cast<std::size_t>(n) *
                         static_cast<std::size_t>(k));
  for (auto& v : X) v = rng.uniform(-1.0, 1.0);
  return X;
}

/// A LinearOperator that oracle-checks every product it computes.  Failures
/// accumulate; the test asserts none at the end.
class OracleCheckedOperator {
 public:
  OracleCheckedOperator(const CsrMatrix& a, const optimize::OptimizedSpmv& spmv)
      : a_(a), spmv_(spmv) {}

  [[nodiscard]] solvers::LinearOperator op() {
    return solvers::LinearOperator(
        a_.nrows(), a_.ncols(), [this](const value_t* x, value_t* y) {
          spmv_.run(x, y);
          ++applies_;
          const auto report = verify::check_spmv(
              a_, std::span(x, static_cast<std::size_t>(a_.ncols())),
              std::span(y, static_cast<std::size_t>(a_.nrows())));
          if (!report.pass()) failures_.push_back(report.to_string());
        });
  }

  [[nodiscard]] int applies() const noexcept { return applies_; }
  [[nodiscard]] const std::vector<std::string>& failures() const noexcept {
    return failures_;
  }

 private:
  const CsrMatrix& a_;
  const optimize::OptimizedSpmv& spmv_;
  int applies_ = 0;
  std::vector<std::string> failures_;
};

/// The plan sweep the solvers run under: baseline plus the interesting
/// single optimizations and both extension formats (each degrades to
/// something runnable on any matrix).
std::vector<optimize::Plan> solver_plan_pool() {
  std::vector<optimize::Plan> plans;
  plans.push_back(optimize::Plan{});
  optimize::Plan vec;
  vec.compute = kernels::Compute::Vector;
  plans.push_back(vec);
  plans.push_back(optimize::sell_plan());
  plans.push_back(optimize::bcsr_plan());
  return plans;
}

// --- SpMM through the oracle ----------------------------------------------

void expect_spmm_matches_oracle(const CsrMatrix& a, index_t k) {
  const std::vector<value_t> X = random_block(a.ncols(), k, 7);
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), 3);
  std::vector<value_t> Y(static_cast<std::size_t>(a.nrows()) *
                             static_cast<std::size_t>(k),
                         std::nan(""));
  kernels::spmm(a, part, X.data(), Y.data(), k);

  std::vector<value_t> xr(static_cast<std::size_t>(a.ncols()));
  std::vector<value_t> yr(static_cast<std::size_t>(a.nrows()));
  for (index_t r = 0; r < k; ++r) {
    for (index_t j = 0; j < a.ncols(); ++j)
      xr[static_cast<std::size_t>(j)] =
          X[static_cast<std::size_t>(j) * static_cast<std::size_t>(k) +
            static_cast<std::size_t>(r)];
    for (index_t i = 0; i < a.nrows(); ++i)
      yr[static_cast<std::size_t>(i)] =
          Y[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
            static_cast<std::size_t>(r)];
    const auto report = verify::check_spmv(a, xr, yr);
    EXPECT_TRUE(report.pass()) << "rhs " << r << ": " << report.to_string();
  }
}

TEST(PropertySpmm, FusedKernelPassesOraclePerColumn) {
  const CsrMatrix a = gen::power_law(400, 8, 2.0, 3);
  for (index_t k : {1, 2, 4, 8}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    expect_spmm_matches_oracle(a, k);
  }
}

TEST(PropertySpmm, UnfusedKernelPassesOracle) {
  const CsrMatrix a = gen::random_uniform(300, 9, 11);
  const index_t k = 4;
  const std::vector<value_t> X = random_block(a.ncols(), k, 13);
  const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(), 3);
  std::vector<value_t> Yf(static_cast<std::size_t>(a.nrows()) * k);
  std::vector<value_t> Yu(static_cast<std::size_t>(a.nrows()) * k);
  kernels::spmm(a, part, X.data(), Yf.data(), k);
  kernels::spmm_unfused(a, part, X.data(), Yu.data(), k);
  // Fused and unfused must agree bit-wise per row up to reordering error;
  // both are covered by checking the unfused one against the fused-checked
  // oracle path above, so here a direct elementwise ULP check suffices.
  for (std::size_t i = 0; i < Yf.size(); ++i)
    EXPECT_LE(verify::ulp_distance(Yf[i], Yu[i]), 64u) << "index " << i;
}

TEST(PropertySpmm, IrregularMatricesPassOracle) {
  expect_spmm_matches_oracle(gen::few_dense_rows(250, 2, 6, 125, 5), 3);
  expect_spmm_matches_oracle(gen::banded(200, 20, 7, 9), 5);
}

// --- Krylov solvers through the oracle ------------------------------------

TEST(PropertySolvers, CgEverySpmvPassesOracleAcrossPlans) {
  const CsrMatrix a = gen::stencil_2d_5pt(12, 12);
  std::vector<value_t> x_true = gen::test_vector(a.ncols(), 99);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);

  for (const auto& plan : solver_plan_pool()) {
    SCOPED_TRACE("plan=" + plan.to_string());
    const auto spmv = optimize::OptimizedSpmv::create(a, plan, 2);
    OracleCheckedOperator checked(a, spmv);
    std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
    const auto r = solvers::cg(checked.op(), b, x);
    EXPECT_TRUE(r.converged);
    EXPECT_GT(checked.applies(), 0);
    EXPECT_TRUE(checked.failures().empty())
        << checked.failures().front() << " (+" << checked.failures().size() - 1
        << " more)";
  }
}

TEST(PropertySolvers, BicgstabAndGmresPassOracle) {
  // Nonsymmetric diagonally dominant system, as in test_solvers.cpp.
  const CsrMatrix a =
      gen::make_diagonally_dominant(gen::random_uniform(200, 5, 17), 2.0);
  std::vector<value_t> x_true = gen::test_vector(a.ncols(), 5);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);

  const auto spmv = optimize::OptimizedSpmv::create(a, optimize::Plan{}, 2);
  {
    OracleCheckedOperator checked(a, spmv);
    std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
    solvers::SolverOptions opt;
    opt.max_iterations = 2000;
    const auto r = solvers::bicgstab(checked.op(), b, x, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(checked.failures().empty()) << checked.failures().front();
  }
  {
    OracleCheckedOperator checked(a, spmv);
    std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
    solvers::SolverOptions opt;
    opt.max_iterations = 2000;
    const auto r = solvers::gmres(checked.op(), b, x, 30, opt);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(checked.failures().empty()) << checked.failures().front();
  }
}

// --- Stationary solvers through the oracle --------------------------------

/// Validate a converged solution against the *oracle's* residual, not the
/// solver's own arithmetic: r = b - A x computed with compensated summation.
void expect_oracle_residual(const CsrMatrix& a, std::span<const value_t> b,
                            std::span<const value_t> x, double rel_tol) {
  const auto oracle = verify::kahan_reference(a, x);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double r = b[i] - oracle.y[i];
    rr += r * r;
    bb += b[i] * b[i];
  }
  EXPECT_LE(std::sqrt(rr), rel_tol * std::sqrt(bb));
}

TEST(PropertySolvers, JacobiSolutionPassesOracleResidual) {
  const CsrMatrix a = gen::stencil_2d_5pt(10, 10);
  std::vector<value_t> x_true = gen::test_vector(a.ncols(), 3);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  solvers::SolverOptions opt;
  opt.max_iterations = 5000;
  opt.rel_tolerance = 1e-8;
  const auto r = solvers::jacobi(a, b, x, 0.8, opt);
  EXPECT_TRUE(r.converged);
  expect_oracle_residual(a, b, x, 1e-7);
}

TEST(PropertySolvers, GaussSeidelSolutionPassesOracleResidual) {
  const CsrMatrix a = gen::stencil_2d_5pt(10, 10);
  std::vector<value_t> x_true = gen::test_vector(a.ncols(), 4);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  solvers::SolverOptions opt;
  opt.max_iterations = 5000;
  opt.rel_tolerance = 1e-8;
  const auto r = solvers::gauss_seidel(a, b, x, opt);
  EXPECT_TRUE(r.converged);
  expect_oracle_residual(a, b, x, 1e-7);
}

TEST(PropertySolvers, ChebyshevEverySpmvPassesOracle) {
  // 2-D 5-point Laplacian on an m x m grid has spectrum inside
  // [4 - 4cos(pi/(m+1)), 4 + 4cos(pi/(m+1))]; pad a few percent.
  const int m = 10;
  const CsrMatrix a = gen::stencil_2d_5pt(m, m);
  const double c = std::cos(M_PI / (m + 1));
  const double lo = (4.0 - 4.0 * c) * 0.95;
  const double hi = (4.0 + 4.0 * c) * 1.05;

  std::vector<value_t> x_true = gen::test_vector(a.ncols(), 6);
  std::vector<value_t> b(static_cast<std::size_t>(a.nrows()));
  a.multiply(x_true, b);

  const auto spmv = optimize::OptimizedSpmv::create(a, optimize::Plan{}, 2);
  OracleCheckedOperator checked(a, spmv);
  std::vector<value_t> x(static_cast<std::size_t>(a.nrows()), 0.0);
  solvers::SolverOptions opt;
  opt.max_iterations = 5000;
  opt.rel_tolerance = 1e-8;
  const auto r = solvers::chebyshev(checked.op(), b, x, lo, hi, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(checked.applies(), 0);
  EXPECT_TRUE(checked.failures().empty()) << checked.failures().front();
  expect_oracle_residual(a, b, x, 1e-7);
}

}  // namespace
}  // namespace spmvopt
