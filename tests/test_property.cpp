// Property-based sweeps: invariants that must hold for *every* generated
// matrix, checked across randomized generator parameters (TEST_P over seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "gen/generators.hpp"
#include "kernels/bcsr_kernels.hpp"
#include "optimize/optimized_spmv.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/binary_io.hpp"
#include "sparse/delta_csr.hpp"
#include "sparse/mmio.hpp"
#include "sparse/reorder.hpp"
#include "sparse/sell.hpp"
#include "sparse/split_csr.hpp"
#include "sparse/sym_csr.hpp"
#include "support/partition.hpp"
#include "support/rng.hpp"
#include "verify/oracle.hpp"

namespace spmvopt {
namespace {

/// A random matrix with randomized family and parameters, fully determined
/// by `seed`.
CsrMatrix random_matrix(std::uint64_t seed) {
  Xoshiro256 rng(seed * 7919 + 13);
  const auto family = rng.bounded(6);
  const auto n = static_cast<index_t>(200 + rng.bounded(1800));
  switch (family) {
    case 0:
      return gen::random_uniform(n, static_cast<index_t>(1 + rng.bounded(12)),
                                 seed);
    case 1:
      return gen::banded(n, static_cast<index_t>(5 + rng.bounded(100)),
                         static_cast<index_t>(1 + rng.bounded(16)), seed);
    case 2:
      return gen::power_law(n, static_cast<index_t>(3 + rng.bounded(15)),
                            1.5 + rng.uniform(), seed);
    case 3:
      return gen::few_dense_rows(n, static_cast<index_t>(1 + rng.bounded(4)),
                                 static_cast<index_t>(1 + rng.bounded(5)),
                                 std::max<index_t>(1, n / 2), seed);
    case 4:
      return gen::short_rows(n, 1.0 + 3.0 * rng.uniform(), seed);
    default: {
      const auto g = static_cast<index_t>(8 + rng.bounded(24));
      return gen::stencil_2d_5pt(g, g);
    }
  }
}

class RandomMatrixProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomMatrixProperty, CsrInvariantsHold) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  ASSERT_GT(a.nrows(), 0);
  EXPECT_EQ(a.rowptr()[0], 0);
  EXPECT_EQ(a.rowptr()[a.nrows()], a.nnz());
  for (index_t i = 0; i < a.nrows(); ++i) {
    EXPECT_LE(a.rowptr()[i], a.rowptr()[i + 1]);
    // Strictly increasing columns within each row (sorted, deduplicated).
    for (index_t k = a.rowptr()[i] + 1; k < a.rowptr()[i + 1]; ++k)
      EXPECT_LT(a.colind()[k - 1], a.colind()[k]);
  }
}

TEST_P(RandomMatrixProperty, EveryPlanMatchesKahanOracle) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  for (const auto& plan : optimize::enumerate_plans(a)) {
    const auto spmv = optimize::OptimizedSpmv::create(a, plan, 3);
    spmv.run(x.data(), y.data());
    // Per-precision oracle: plans now carry a value mode, and the reference
    // must round its inputs the way the plan's kernel stores them
    // (DESIGN.md §13).  Random-matrix values are O(1), so no float-overflow
    // guard is needed here.
    const verify::Oracle oracle =
        verify::kahan_reference(a, x, plan.precision);
    const auto report =
        verify::compare(oracle, y, verify::policy_for(plan.precision));
    ASSERT_TRUE(report.pass()) << plan.to_string() << ": " << report.to_string();
  }
}

TEST_P(RandomMatrixProperty, DeltaRoundTripsWhenEncodable) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  const auto d = DeltaCsrMatrix::encode(a);
  if (!d) {
    // Not encodable must mean some gap exceeds 16 bits.
    EXPECT_FALSE(DeltaCsrMatrix::required_width(a).has_value());
    return;
  }
  EXPECT_TRUE(d->decode().equals(a));
  EXPECT_LE(d->format_bytes(), a.format_bytes() + a.nrows() * sizeof(index_t));
}

TEST_P(RandomMatrixProperty, SplitMergeRoundTrips) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 5);
  const auto threshold = static_cast<index_t>(1 + rng.bounded(128));
  const SplitCsrMatrix s = SplitCsrMatrix::split(a, threshold);
  EXPECT_EQ(s.nnz(), a.nnz());
  EXPECT_TRUE(s.merge().equals(a));
  // Nothing in the short part reaches the threshold.
  for (index_t i = 0; i < s.short_part().nrows(); ++i)
    EXPECT_LT(s.short_part().row_nnz(i), threshold);
}

TEST_P(RandomMatrixProperty, SellMatchesCsr) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 9);
  const auto chunk = static_cast<index_t>(1 + rng.bounded(12));
  const auto sigma = static_cast<index_t>(1 + rng.bounded(512));
  const SellMatrix s = SellMatrix::from_csr(a, chunk, sigma);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  s.multiply(x.data(), y.data());
  const auto report = verify::check_spmv(a, x, y);
  EXPECT_TRUE(report.pass()) << "chunk " << chunk << " sigma " << sigma << ": "
                             << report.to_string();
}

TEST_P(RandomMatrixProperty, MatrixMarketRoundTrips) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  std::stringstream buf;
  write_matrix_market(buf, a);
  EXPECT_TRUE(CsrMatrix::from_coo(read_matrix_market(buf)).equals(a));
}

TEST_P(RandomMatrixProperty, BinaryRoundTrips) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(buf, a);
  EXPECT_TRUE(read_csr_binary(buf).equals(a));
}

TEST_P(RandomMatrixProperty, BalancedPartitionIsBalanced) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  index_t max_row = 0;
  for (index_t i = 0; i < a.nrows(); ++i)
    max_row = std::max(max_row, a.row_nnz(i));
  for (int threads : {2, 3, 7, 16}) {
    const RowPartition p = balanced_nnz_partition(a.rowptr(), a.nrows(), threads);
    EXPECT_EQ(p.bounds.front(), 0);
    EXPECT_EQ(p.bounds.back(), a.nrows());
    const index_t ideal = a.nnz() / threads;
    for (int t = 0; t < threads; ++t) {
      const index_t nnz_t =
          a.rowptr()[p.bounds[static_cast<std::size_t>(t) + 1]] -
          a.rowptr()[p.bounds[static_cast<std::size_t>(t)]];
      // A contiguous nnz-balanced split can overshoot by at most one row.
      EXPECT_LE(nnz_t, ideal + max_row) << "thread " << t << "/" << threads;
    }
  }
}

TEST_P(RandomMatrixProperty, BcsrRoundTripsAndKernelMatches) {
  const CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 21);
  const auto br = static_cast<index_t>(1 + rng.bounded(8));
  const auto bc = static_cast<index_t>(1 + rng.bounded(8));
  const BcsrMatrix b = BcsrMatrix::from_csr(a, br, bc);
  EXPECT_TRUE(b.to_csr().equals(a));
  EXPECT_GE(b.fill_ratio(), 1.0);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  kernels::spmv_bcsr(b, x.data(), y.data());
  const auto report = verify::check_spmv(a, x, y);
  EXPECT_TRUE(report.pass()) << br << "x" << bc << ": " << report.to_string();
}

TEST_P(RandomMatrixProperty, RcmPermutationCommutesWithSpmv) {
  CsrMatrix a = random_matrix(static_cast<std::uint64_t>(GetParam()));
  if (a.nrows() != a.ncols()) return;  // RCM needs square
  const Permutation p = reverse_cuthill_mckee(a);
  p.validate();
  const CsrMatrix b = permute_symmetric(a, p);
  EXPECT_EQ(b.nnz(), a.nnz());
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> ax(static_cast<std::size_t>(a.nrows()));
  a.multiply(x, ax);
  std::vector<value_t> px(x.size()), bpx(x.size()), pax(x.size());
  permute_gather(p, x.data(), px.data());
  b.multiply(px, bpx);
  permute_gather(p, ax.data(), pax.data());
  // Both B*(Px) and P*(Ax) sum the same per-row terms in different orders,
  // so both must sit inside the oracle's reordering bound for (B, Px).
  const verify::Oracle oracle = verify::kahan_reference(b, px);
  const auto direct = verify::compare(oracle, bpx);
  EXPECT_TRUE(direct.pass()) << direct.to_string();
  const auto commuted = verify::compare(oracle, pax);
  EXPECT_TRUE(commuted.pass()) << commuted.to_string();
}

TEST_P(RandomMatrixProperty, SymmetrizedMatrixThroughSymKernel) {
  const CsrMatrix base = random_matrix(static_cast<std::uint64_t>(GetParam()));
  // Symmetrize: B = A + A^T (pattern and values).
  CooMatrix coo(base.nrows(), base.nrows());
  for (index_t i = 0; i < base.nrows(); ++i)
    for (index_t k = base.rowptr()[i]; k < base.rowptr()[i + 1]; ++k) {
      const index_t j = base.colind()[k];
      if (j >= base.nrows()) continue;  // guard non-square families
      coo.add_symmetric(i, j, base.values()[k]);
    }
  coo.compress();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  if (a.nnz() == 0) return;
  const SymCsrMatrix sym = SymCsrMatrix::from_symmetric_csr(a, 1e-12);
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  kernels::spmv_sym(sym, x.data(), y.data(), 3);
  const auto report = verify::check_spmv(a, x, y);
  EXPECT_TRUE(report.pass()) << report.to_string();
}

// 24 seeds: enough to hit every family ≥ 2× with varied parameters; the
// ULP/bound comparator keeps the widened sweep deterministic (no tolerance
// flakes to tune when a seed lands on a cancellation-heavy row).
INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatrixProperty, ::testing::Range(1, 25));

}  // namespace
}  // namespace spmvopt
