#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.hpp"

namespace spmvopt {
namespace {

// These mutate the process environment; gtest runs tests in one process, so
// each test restores what it changes.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_)
      setenv(name_, saved_.c_str(), 1);
    else
      unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(Env, LongParsesAndFallsBack) {
  EnvGuard guard("SPMVOPT_TEST_VAR");
  unsetenv("SPMVOPT_TEST_VAR");
  EXPECT_EQ(env_long("SPMVOPT_TEST_VAR", 42), 42);
  setenv("SPMVOPT_TEST_VAR", "17", 1);
  EXPECT_EQ(env_long("SPMVOPT_TEST_VAR", 42), 17);
  setenv("SPMVOPT_TEST_VAR", "-3", 1);
  EXPECT_EQ(env_long("SPMVOPT_TEST_VAR", 42), -3);
  setenv("SPMVOPT_TEST_VAR", "junk", 1);
  EXPECT_EQ(env_long("SPMVOPT_TEST_VAR", 42), 42);
  setenv("SPMVOPT_TEST_VAR", "", 1);
  EXPECT_EQ(env_long("SPMVOPT_TEST_VAR", 42), 42);
}

TEST(Env, StringFallsBack) {
  EnvGuard guard("SPMVOPT_TEST_STR");
  unsetenv("SPMVOPT_TEST_STR");
  EXPECT_EQ(env_string("SPMVOPT_TEST_STR", "dflt"), "dflt");
  setenv("SPMVOPT_TEST_STR", "value", 1);
  EXPECT_EQ(env_string("SPMVOPT_TEST_STR", "dflt"), "value");
}

TEST(Env, ItersRunsOverrides) {
  EnvGuard gi("SPMVOPT_ITERS"), gr("SPMVOPT_RUNS"), gq("SPMVOPT_QUICK");
  unsetenv("SPMVOPT_QUICK");
  setenv("SPMVOPT_ITERS", "77", 1);
  setenv("SPMVOPT_RUNS", "9", 1);
  EXPECT_EQ(bench_iterations(), 77);
  EXPECT_EQ(bench_runs(), 9);
  unsetenv("SPMVOPT_ITERS");
  unsetenv("SPMVOPT_RUNS");
  EXPECT_EQ(bench_iterations(), 40);  // documented default
  EXPECT_EQ(bench_runs(), 3);
  setenv("SPMVOPT_QUICK", "1", 1);
  EXPECT_TRUE(quick_mode());
  EXPECT_EQ(bench_iterations(), 16);
  EXPECT_EQ(bench_runs(), 2);
}

}  // namespace
}  // namespace spmvopt
