// PageRank on a synthetic web graph — the graph-analytics workload of the
// paper's introduction.  Scale-free graphs concentrate nonzeros in a few hub
// rows, which is exactly the {IMB, CMP} signature the optimizer's long-row
// decomposition targets.
//
// Usage: pagerank [rmat_scale] [edge_factor]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "spmvopt/spmvopt.hpp"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  using namespace spmvopt;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 16;
  const index_t edge_factor = argc > 2 ? std::atoi(argv[2]) : 8;
  if (scale < 1 || scale > 24 || edge_factor < 1) {
    std::fprintf(stderr, "usage: pagerank [scale 1..24] [edge_factor >= 1]\n");
    return 1;
  }

  const CsrMatrix G = gen::rmat(scale, edge_factor, 0.57, 0.19, 0.19, 42);
  std::printf("RMAT graph: %d nodes, %d edges\n", G.nrows(), G.nnz());

  // The transition matrix is what the power iteration multiplies by — build
  // it once and let the optimizer tune that SpMV.
  const CsrMatrix P = solvers::transition_matrix(G);

  optimize::OptimizerConfig cfg;
  cfg.measure.iterations = 8;
  cfg.measure.runs = 2;
  const auto out = optimize::optimize_profile(P, cfg);
  std::printf("transition-matrix bottlenecks: %s  ->  plan: %s\n",
              out.classes.to_string().c_str(), out.plan.to_string().c_str());

  Timer timer;
  const auto result = solvers::pagerank_with_operator(
      solvers::LinearOperator::from_optimized(out.spmv),
      solvers::dangling_nodes(G), G.nrows());
  std::printf("pagerank: %d iterations, converged=%d, %.3f s\n",
              result.iterations, result.converged ? 1 : 0,
              timer.elapsed_sec());

  // Top 5 nodes.
  std::vector<index_t> order(static_cast<std::size_t>(G.nrows()));
  for (index_t i = 0; i < G.nrows(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](index_t a, index_t b) {
                      return result.scores[static_cast<std::size_t>(a)] >
                             result.scores[static_cast<std::size_t>(b)];
                    });
  std::printf("top nodes:");
  for (int k = 0; k < 5; ++k)
    std::printf("  #%d (%.2e)", order[static_cast<std::size_t>(k)],
                result.scores[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])]);
  std::printf("\n");
  return result.converged ? 0 : 1;
}
