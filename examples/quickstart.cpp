// Quickstart: optimize SpMV for a matrix in three lines.
//
//   1. get a CSR matrix (generated here; read_matrix_market_file works too),
//   2. ask the profile-guided optimizer what its bottlenecks are,
//   3. run the returned kernel.
//
// Usage: quickstart [path/to/matrix.mtx]
#include <cstdio>
#include <vector>

#include "spmvopt/spmvopt.hpp"

int main(int argc, char** argv) {
  using namespace spmvopt;

  // 1. A sparse matrix: from a Matrix Market file if given, else a generated
  //    3-D Poisson problem.
  CsrMatrix A = argc > 1
                    ? CsrMatrix::from_coo(read_matrix_market_file(argv[1]))
                    : gen::stencil_3d_7pt(40, 40, 40);
  std::printf("matrix: %d x %d, %d nonzeros\n", A.nrows(), A.ncols(), A.nnz());

  // 2. Let the optimizer profile the matrix on this machine, detect its
  //    bottleneck classes, and pick the matching optimizations (Table II).
  //    The one-time platform bandwidth probe is warmed first so the reported
  //    preprocessing cost is the per-matrix part only.
  (void)perf::bandwidth_profile();
  optimize::OptimizerConfig cfg;
  cfg.measure.iterations = 16;  // profiling effort
  cfg.measure.runs = 2;
  const optimize::OptimizeOutcome out = optimize::optimize_profile(A, cfg);
  std::printf("detected bottlenecks: %s\n", out.classes.to_string().c_str());
  std::printf("selected plan:        %s\n", out.plan.to_string().c_str());
  std::printf("preprocessing cost:   %.1f ms\n", out.preprocess_seconds * 1e3);

  // 3. y = A * x with the optimized kernel.
  const std::vector<value_t> x = gen::test_vector(A.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(A.nrows()));
  out.spmv.run(x.data(), y.data());

  // How much faster than the unoptimized baseline?
  perf::MeasureConfig m;
  m.iterations = 32;
  m.runs = 3;
  const optimize::OptimizedSpmv baseline =
      optimize::OptimizedSpmv::create(A, optimize::Plan{});
  const double base = optimize::measure_spmv_gflops(baseline, A, m);
  const double opt = optimize::measure_spmv_gflops(out.spmv, A, m);
  std::printf("baseline: %.2f Gflop/s   optimized: %.2f Gflop/s   (%.2fx)\n",
              base, opt, opt / base);
  return 0;
}
