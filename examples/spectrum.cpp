// Eigenvalue estimation on a 2-D Poisson operator — the paper's second
// motivating application (§I: "the approximation of eigenvalues of large
// sparse matrices").  Both estimators do one SpMV per iteration, run here on
// an optimizer-selected kernel, and are checked against the closed-form
// spectrum of the discrete Laplacian.
//
// Usage: spectrum [grid_points_per_side]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "spmvopt/spmvopt.hpp"

int main(int argc, char** argv) {
  using namespace spmvopt;
  const index_t g = argc > 1 ? std::atoi(argv[1]) : 96;
  if (g < 2) {
    std::fprintf(stderr, "grid side must be >= 2\n");
    return 1;
  }
  const CsrMatrix A = gen::stencil_2d_5pt(g, g);
  std::printf("2-D Laplacian on a %dx%d grid: n = %d, nnz = %d\n", g, g,
              A.nrows(), A.nnz());

  // Closed form: eigenvalues 4 - 2cos(i pi/(g+1)) - 2cos(j pi/(g+1)).
  const double c = std::cos(M_PI / (g + 1));
  const double exact_min = 4.0 - 4.0 * c;
  const double exact_max = 4.0 + 4.0 * c;

  optimize::OptimizerConfig cfg;
  cfg.measure.iterations = 8;
  cfg.measure.runs = 2;
  const auto out = optimize::optimize_profile(A, cfg);
  std::printf("optimizer: classes %s -> plan %s\n",
              out.classes.to_string().c_str(), out.plan.to_string().c_str());
  const auto op = solvers::LinearOperator::from_optimized(out.spmv);

  solvers::EigenOptions popt;
  popt.max_iterations = 3000;
  popt.tolerance = 1e-12;
  const auto power = solvers::power_method(op, popt);
  std::printf("power method : lambda_max = %.8f (exact %.8f), %d iterations\n",
              power.eigenvalue, exact_max, power.iterations);

  const auto lanczos = solvers::lanczos_extreme(op, 120);
  std::printf("lanczos      : lambda_min = %.8f (exact %.8f)\n",
              lanczos.lambda_min, exact_min);
  std::printf("               lambda_max = %.8f (exact %.8f), %d steps\n",
              lanczos.lambda_max, exact_max, lanczos.iterations);
  std::printf("condition number estimate: %.1f\n",
              lanczos.lambda_max / lanczos.lambda_min);

  // The power method's rate is (lambda2/lambda1)^k, and the top of the
  // Laplacian spectrum clusters as O(1/g^2) — so only a loose check there;
  // Lanczos converges to the extremes far faster.
  const bool ok = std::abs(power.eigenvalue - exact_max) < 5e-3 * exact_max &&
                  std::abs(lanczos.lambda_max - exact_max) < 1e-2;
  return ok ? 0 : 1;
}
