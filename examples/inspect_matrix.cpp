// Matrix inspection tool: the full §III analysis for one matrix.
//
// Prints the Table I structural features, the measured per-class performance
// bounds of §III-B, the profile-guided classification (Fig. 4), and the
// Table II optimization plan — everything the optimizer knows before it
// commits to a kernel.
//
// Usage: inspect_matrix [path/to/matrix.mtx | suite:NAME]
//   suite:NAME picks a matrix from the paper's evaluation suite, e.g.
//   suite:poisson3Db or suite:rajat30 (generated stand-ins, DESIGN.md §3).
#include <cstdio>
#include <cstring>
#include <string>

#include "spmvopt/spmvopt.hpp"

#include "features/features.hpp"
#include "support/cpu_info.hpp"

namespace {

spmvopt::CsrMatrix load(const std::string& arg) {
  using namespace spmvopt;
  if (arg.rfind("suite:", 0) == 0) {
    const std::string name = arg.substr(6);
    for (const auto& e : gen::evaluation_suite(0.5))
      if (e.name == name) return e.make();
    throw std::runtime_error("no suite matrix named '" + name + "'");
  }
  return CsrMatrix::from_coo(read_matrix_market_file(arg));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spmvopt;
  const std::string arg = argc > 1 ? argv[1] : "suite:poisson3Db";

  CsrMatrix A;
  try {
    A = load(arg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const CpuInfo& cpu = cpu_info();
  std::printf("== host ==\n%s\nLLC %zu KiB, line %zu B, %d threads\n\n",
              cpu.model_name.c_str(), cpu.llc_bytes / 1024,
              cpu.cache_line_bytes, default_threads());

  std::printf("== matrix (%s) ==\n%d x %d, %d nonzeros, %.1f nnz/row, "
              "%.2f MiB as CSR\n\n",
              arg.c_str(), A.nrows(), A.ncols(), A.nnz(),
              static_cast<double>(A.nnz()) / A.nrows(),
              static_cast<double>(A.format_bytes()) / (1024.0 * 1024.0));

  std::printf("== structural features (Table I) ==\n");
  const auto f = features::extract_features(A);
  for (int i = 0; i < features::kFeatureCount; ++i) {
    const auto id = static_cast<features::FeatureId>(i);
    std::printf("  %-15s %.6g\n", features::feature_name(id), f[id]);
  }

  std::printf("\n== per-class bounds (Section III-B), measured ==\n");
  perf::BoundsConfig cfg;
  cfg.measure.iterations = 16;
  cfg.measure.runs = 2;
  const auto result = classify::classify_profile(A, {}, cfg);
  const auto& b = result.bounds;
  std::printf("  P_CSR  %7.2f Gflop/s   (baseline)\n", b.p_csr);
  std::printf("  P_MB   %7.2f Gflop/s   (B_max %.1f GB/s, %s)\n", b.p_mb,
              b.bmax_gbps, b.fits_llc ? "LLC-resident" : "DRAM-resident");
  std::printf("  P_ML   %7.2f Gflop/s\n", b.p_ml);
  std::printf("  P_IMB  %7.2f Gflop/s\n", b.p_imb);
  std::printf("  P_CMP  %7.2f Gflop/s\n", b.p_cmp);
  std::printf("  P_peak %7.2f Gflop/s\n", b.p_peak);

  std::printf("\n== classification (Fig. 4) ==\n  classes: %s\n",
              result.classes.to_string().c_str());
  const auto plan = optimize::plan_for_classes(result.classes, A);
  std::printf("  plan (Table II): %s\n", plan.to_string().c_str());
  return 0;
}
