// Conjugate Gradient on a 3-D Poisson problem — the scientific-computing
// workload of the paper's introduction.
//
// Demonstrates the amortization trade-off of §IV-D: the optimizer spends
// t_pre up front, each CG iteration then runs a faster SpMV, and the solver
// breaks even after N_iters,min = t_pre / (t_baseline - t_optimized).
//
// Usage: cg_poisson [grid_points_per_side]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "spmvopt/spmvopt.hpp"
#include "support/timing.hpp"

int main(int argc, char** argv) {
  using namespace spmvopt;

  const index_t g = argc > 1 ? std::atoi(argv[1]) : 48;
  if (g < 2) {
    std::fprintf(stderr, "grid side must be >= 2\n");
    return 1;
  }
  const CsrMatrix A = gen::stencil_3d_7pt(g, g, g);
  std::printf("Poisson %dx%dx%d: n = %d, nnz = %d\n", g, g, g, A.nrows(),
              A.nnz());

  // Manufactured solution so we can check the answer.
  const std::vector<value_t> x_true = gen::test_vector(A.ncols(), 7);
  std::vector<value_t> b(static_cast<std::size_t>(A.nrows()));
  A.multiply(x_true, b);

  solvers::SolverOptions opts;
  opts.max_iterations = 2000;
  opts.rel_tolerance = 1e-10;

  // Baseline solve.
  std::vector<value_t> x0(static_cast<std::size_t>(A.nrows()), 0.0);
  Timer t_base;
  const auto r_base =
      solvers::cg(solvers::LinearOperator::from_csr(A), b, x0, opts);
  const double base_sec = t_base.elapsed_sec();

  // Optimized solve (profile-guided).  The platform bandwidth probe is a
  // one-time per-host cost; warm it so t_pre below is the per-matrix part.
  (void)perf::bandwidth_profile();
  optimize::OptimizerConfig cfg;
  cfg.measure.iterations = 16;
  cfg.measure.runs = 2;
  Timer t_opt_total;
  const auto out = optimize::optimize_profile(A, cfg);
  std::vector<value_t> x1(static_cast<std::size_t>(A.nrows()), 0.0);
  const auto r_opt =
      solvers::cg(solvers::LinearOperator::from_optimized(out.spmv), b, x1, opts);
  const double opt_sec = t_opt_total.elapsed_sec();

  std::printf("baseline : %4d iterations, residual %.2e, %.3f s\n",
              r_base.iterations, r_base.residual_norm, base_sec);
  std::printf("optimized: %4d iterations, residual %.2e, %.3f s"
              " (classes %s, plan %s, t_pre %.1f ms)\n",
              r_opt.iterations, r_opt.residual_norm, opt_sec,
              out.classes.to_string().c_str(), out.plan.to_string().c_str(),
              out.preprocess_seconds * 1e3);

  // Verify both solutions.
  double max_err = 0.0;
  for (std::size_t i = 0; i < x1.size(); ++i)
    max_err = std::max(max_err, std::abs(x1[i] - x_true[i]));
  std::printf("max |x - x_true| = %.2e\n", max_err);
  return r_base.converged && r_opt.converged && max_err < 1e-6 ? 0 : 1;
}
