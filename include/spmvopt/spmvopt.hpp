// spmvopt — umbrella public header.
//
// This is the supported API surface; everything an application needs to
// load/generate a matrix, pick a plan, bind it (optionally to a persistent
// NUMA-aware execution engine), run SpMV/SpMM, drive the iterative solvers,
// and verify or benchmark the result.  Build against the `spmvopt` CMake
// target and include only this header:
//
//   #include <spmvopt/spmvopt.hpp>
//
//   using namespace spmvopt;
//   CsrMatrix A = gen::stencil_3d_7pt(64, 64, 64);
//   engine::ExecutionEngine eng;                       // persistent team
//   auto plan  = optimize::plan_for_classes(
//                    classify::heuristic_feature_classes(A), A);
//   auto spmv  = optimize::OptimizedSpmv::create(A, plan, eng);
//   auto x     = eng.touched_vector(A.ncols());        // NUMA-placed operand
//   auto y     = eng.touched_vector(A.nrows(), spmv.partition());
//   spmv.run(x.data(), y.data());
//
// Headers under src/ remain includable for internal/advanced use, but only
// the surface re-exported here is covered by the API conventions of
// DESIGN.md §8 (raw-pointer noexcept hot path + checked std::span overload).
#pragma once

// Typed operand descriptors for the dtype-aware API (DESIGN.md §8).
#include "support/dtype.hpp"

// Matrix formats and I/O.
#include "sparse/csr.hpp"
#include "sparse/coo.hpp"
#include "sparse/mmio.hpp"
#include "sparse/binary_io.hpp"

// Synthetic matrix generators and the paper's evaluation suite.
#include "gen/generators.hpp"
#include "gen/suite.hpp"

// Kernels: the named-variant registry, SpMM, and the composed-kernel space.
#include "kernels/merge_csr.hpp"
#include "kernels/registry.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmm_blocked.hpp"
#include "kernels/spmv.hpp"

// Persistent, affinity-pinned execution engine + host topology probe, and
// the shared work-stealing pool that backs it for concurrent callers.
#include "engine/execution_engine.hpp"
#include "engine/steal_pool.hpp"
#include "support/topology.hpp"

// Plans, the optimizers, and the plan-bound executor.
#include "optimize/plan.hpp"
#include "optimize/optimized_spmv.hpp"
#include "optimize/optimizers.hpp"

// Bottleneck classifiers (profile-guided and feature/tree-based).
#include "classify/feature_classifier.hpp"
#include "classify/profile_classifier.hpp"

// Iterative solvers over LinearOperator.
#include "solvers/operator.hpp"
#include "solvers/krylov.hpp"
#include "solvers/preconditioner.hpp"
#include "solvers/eigen.hpp"
#include "solvers/pagerank.hpp"

// Measurement, bench documents, and the differential verifier.
#include "perf/measure.hpp"
#include "report/bench_doc.hpp"
#include "report/runner.hpp"
#include "report/compare.hpp"
#include "verify/differential.hpp"

// Matrix structural fingerprints (cache/server identity keys).
#include "support/fingerprint.hpp"

// Robustness: error taxonomy and cooperative cancellation/deadlines.
#include "robust/error.hpp"
#include "robust/cancel.hpp"

// The spmvoptd multi-tenant server: protocol, plan cache, server core +
// socket transport, and the blocking client.
#include "server/protocol.hpp"
#include "server/plan_cache.hpp"
#include "server/server.hpp"
#include "server/client.hpp"
