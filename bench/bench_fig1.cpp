// Fig. 1 — Speedup (or slowdown) of individual software optimizations
// applied to the CSR SpMV kernel, per matrix of the evaluation suite.
//
// Columns match the paper's three series: software prefetching,
// vectorization, and auto scheduling, each relative to the balanced-nnz
// baseline.  Values < 1 are the slowdowns the paper highlights as the reason
// blind optimization is dangerous.
#include <cstdio>
#include <iostream>
#include <vector>

#include "report/environment.hpp"
#include "gen/suite.hpp"
#include "gen/generators.hpp"
#include "optimize/optimized_spmv.hpp"
#include "optimize/optimizers.hpp"
#include "support/table.hpp"

int main() {
  using namespace spmvopt;
  report::print_host_preamble("Fig. 1: per-optimization speedup over baseline CSR");

  const perf::MeasureConfig m = perf::MeasureConfig::from_env();

  optimize::Plan pf;
  pf.prefetch = true;
  optimize::Plan vec;
  vec.compute = kernels::Compute::Vector;
  optimize::Plan autos;
  autos.sched = kernels::Sched::Auto;

  Table table({"matrix", "baseline_gflops", "sw_prefetch", "vectorization",
               "auto_sched"});

  for (const auto& entry : gen::evaluation_suite(report::suite_scale())) {
    const CsrMatrix a = entry.make();
    const auto baseline = optimize::OptimizedSpmv::create(a, optimize::Plan{});
    const double base = optimize::measure_spmv_gflops(baseline, a, m);
    auto speedup = [&](const optimize::Plan& plan) {
      const auto spmv = optimize::OptimizedSpmv::create(a, plan);
      return optimize::measure_spmv_gflops(spmv, a, m) / base;
    };
    table.add_row({entry.name, Table::num(base, 2), Table::num(speedup(pf), 2),
                   Table::num(speedup(vec), 2), Table::num(speedup(autos), 2)});
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
