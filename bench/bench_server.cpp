// spmvoptd service-level benchmark: the Table V amortization argument,
// measured end to end through the socket.
//
//   * cold submit  — first sight of a matrix: socket round trip + feature
//     extraction + classification + conversion (the full pipeline);
//   * hot submit   — the same matrix again: round trip + a cache lookup.
//     The cold/hot ratio is the amortization the server exists to deliver;
//   * run latency + requests/sec — steady-state y = A*x job throughput for
//     one client, round trip included.
//
// Emits a JSON document (stdout, or --out FILE) so CI can record a smoke
// baseline (bench/baselines/BENCH_server_smoke.json) and eyeball drift.
//
//   bench_server [--runs N] [--matrix-side G] [--out FILE]
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "report/json.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "support/cpu_info.hpp"
#include "support/timing.hpp"

namespace {

using namespace spmvopt;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 200;
  int side = 48;  // 48^2 = 2304-row 5-point stencil: small, cache-resident
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", a.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (a == "--runs") runs = std::atoi(next());
    else if (a == "--matrix-side") side = std::atoi(next());
    else if (a == "--out") out_path = next();
    else {
      std::fprintf(stderr,
                   "usage: bench_server [--runs N] [--matrix-side G] "
                   "[--out FILE]\n");
      return 64;
    }
  }

  const std::string socket_path =
      "/tmp/bench_spmvoptd_" + std::to_string(::getpid()) + ".sock";
  server::ServerConfig cfg;
  server::SpmvServer core(cfg);
  server::SocketServer sock(core, socket_path);
  if (auto s = sock.start(); !s.ok()) {
    std::fprintf(stderr, "bench_server: %s\n", s.error().to_string().c_str());
    return 66;
  }
  auto client = server::Client::connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "bench_server: %s\n",
                 client.error().to_string().c_str());
    return 66;
  }
  server::Client& c = client.value();

  const CsrMatrix a = gen::stencil_2d_5pt(side, side);
  const std::vector<value_t> x = gen::test_vector(a.ncols());

  // Cold: the full pipeline runs server-side.  One shot by construction —
  // the second sight of this matrix can never be cold again.
  Timer t;
  auto cold = c.submit(a);
  const double cold_submit_sec = t.elapsed_sec();
  if (!cold.ok()) {
    std::fprintf(stderr, "bench_server: %s\n",
                 cold.error().to_string().c_str());
    return 70;
  }

  // Hot: repeat submits; take the median round trip.
  std::vector<double> hot_secs;
  for (int i = 0; i < 32; ++i) {
    t.reset();
    auto hot = c.submit(a);
    hot_secs.push_back(t.elapsed_sec());
    if (!hot.ok() || hot.value().state != server::CacheState::Hot) {
      std::fprintf(stderr, "bench_server: expected a hot submit\n");
      return 70;
    }
  }
  const double hot_submit_sec = median(hot_secs);

  // Steady-state run jobs: latency distribution + requests/sec.
  std::vector<double> run_secs;
  run_secs.reserve(static_cast<std::size_t>(runs));
  t.reset();
  for (int i = 0; i < runs; ++i) {
    Timer rt;
    auto y = c.run(cold.value().fp, x);
    run_secs.push_back(rt.elapsed_sec());
    if (!y.ok()) {
      std::fprintf(stderr, "bench_server: %s\n",
                   y.error().to_string().c_str());
      return 70;
    }
  }
  const double wall = t.elapsed_sec();

  report::Json doc = report::Json::object();
  doc.set("schema", "spmvopt-bench-server/v1")
      .set("cpu_model", cpu_info().model_name)
      .set("matrix_rows", a.nrows())
      .set("matrix_nnz", a.nnz())
      .set("plan", cold.value().plan)
      .set("runs", runs)
      .set("cold_submit_ms", cold_submit_sec * 1e3)
      .set("server_preprocess_ms", cold.value().pre_seconds * 1e3)
      .set("hot_submit_ms", hot_submit_sec * 1e3)
      .set("cold_over_hot", cold_submit_sec / hot_submit_sec)
      .set("run_median_ms", median(run_secs) * 1e3)
      .set("requests_per_sec", runs / wall);

  if (auto s = c.shutdown_server(); !s.ok())
    std::fprintf(stderr, "bench_server: shutdown: %s\n",
                 s.error().to_string().c_str());
  sock.wait();
  sock.stop();

  const std::string text = doc.dump();
  if (out_path.empty()) {
    std::printf("%s\n", text.c_str());
  } else {
    std::ofstream out(out_path);
    out << text << '\n';
    std::fprintf(stderr, "bench_server: wrote %s\n", out_path.c_str());
  }
  return 0;
}
