// Engine dispatch-overhead microbenchmarks (google-benchmark).
//
// The persistent-team engine exists to amortize parallel-region startup:
// OpenMP's fork/join costs microseconds per call, which dominates SpMV on
// small operands (an 8^3 stencil SpMV is ~1us of useful work).  Measured
// here:
//   * BM_Dispatch/engine   — a no-op team dispatch (condvar wake + barrier),
//     the engine's fixed per-call cost;
//   * BM_Dispatch/omp      — an empty `#pragma omp parallel` region, the
//     fork/join cost the engine replaces;
//   * BM_SmallSpmv/...     — the same plan on the same small matrix, engine
//     vs OpenMP execution, across operand sizes where overhead matters;
//   * BM_Batch/...         — run_many(nrhs) vs nrhs separate run() calls:
//     one dispatch amortized over a batch;
//   * BM_DispatchPool      — the same no-op dispatch through a pool-backed
//     engine (task-group publish + steal + completion handoff), the cost of
//     concurrent-caller safety relative to the condvar mailbox;
//   * BM_Contended*        — N caller threads × one machine (UseRealTime):
//     engines sharing one work-stealing pool vs the serialized-mailbox
//     arrangement a multi-tenant server would otherwise use.  The pool's
//     win is aggregate throughput, not per-dispatch latency.
#include <benchmark/benchmark.h>

#include <mutex>

#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "optimize/optimized_spmv.hpp"
#include "support/cpu_info.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace {

using namespace spmvopt;

engine::ExecutionEngine& team() {
  static engine::ExecutionEngine eng(
      engine::EngineConfig{.pin = PinPolicy::None});
  return eng;
}

// Grid side per size class: 8^3 = 512 rows (overhead-bound) up to
// 32^3 = 32768 rows (compute starts to dominate).
int grid_side(int cls) { return cls == 0 ? 8 : cls == 1 ? 16 : 32; }

struct Workload {
  CsrMatrix a;
  std::vector<value_t> x;
  std::vector<value_t> y;

  explicit Workload(int g)
      : a(gen::stencil_3d_7pt(g, g, g)),
        x(gen::test_vector(a.ncols())),
        y(static_cast<std::size_t>(a.nrows())) {}
};

Workload& workload(int cls) {
  static Workload small{grid_side(0)};
  static Workload mid{grid_side(1)};
  static Workload large{grid_side(2)};
  switch (cls) {
    case 0: return small;
    case 1: return mid;
    default: return large;
  }
}

void BM_DispatchEngine(benchmark::State& state) {
  engine::ExecutionEngine& eng = team();
  for (auto _ : state) {
    eng.parallel([](int, int) {});
  }
  state.SetLabel(std::to_string(eng.nthreads()) + " thread(s)");
}

void BM_DispatchOmp(benchmark::State& state) {
  int sink = 0;
  for (auto _ : state) {
#if defined(_OPENMP)
#pragma omp parallel
    {
#pragma omp atomic
      ++sink;
    }
#else
    ++sink;
#endif
    benchmark::DoNotOptimize(sink);
  }
}

engine::StealPool& shared_pool() {
  static engine::StealPool pool({.nthreads = 0, .pin = PinPolicy::None});
  return pool;
}

engine::ExecutionEngine& pooled_team() {
  static engine::ExecutionEngine eng(
      engine::EngineConfig{.pin = PinPolicy::None, .pool = &shared_pool()});
  return eng;
}

void BM_DispatchPool(benchmark::State& state) {
  engine::ExecutionEngine& eng = pooled_team();
  for (auto _ : state) {
    eng.parallel([](int, int) {});
  }
  state.SetLabel(std::to_string(eng.nthreads()) + " span(s), " +
                 std::to_string(shared_pool().nworkers()) + " worker(s)");
}

/// N caller threads, each with a matvec of its own, all sharing ONE pool:
/// the multi-executor server shape.  Real time, because the metric is how
/// long N tenants take together.
void BM_ContendedPool(benchmark::State& state) {
  Workload& w = workload(1);
  // Magic static: one thread builds the instance, the rest wait, then all
  // run() it concurrently — the pooled path's per-call scratch makes that
  // safe (it is the server's hot-cache-entry case).
  static const auto spmv =
      optimize::OptimizedSpmv::create(w.a, {}, pooled_team());
  std::vector<value_t> y(static_cast<std::size_t>(w.a.nrows()));
  for (auto _ : state) {
    spmv.run(w.x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(std::to_string(state.threads()) + " caller(s), shared pool");
}

/// The arrangement the pool replaces: one mailbox engine, N callers forced
/// to serialize every dispatch behind a mutex (concurrent run_team on a
/// mailbox engine is undefined — this lock is what a server must do).
void BM_ContendedMailbox(benchmark::State& state) {
  static std::mutex dispatch_mu;
  Workload& w = workload(1);
  static const auto spmv = optimize::OptimizedSpmv::create(w.a, {}, team());
  std::vector<value_t> y(static_cast<std::size_t>(w.a.nrows()));
  for (auto _ : state) {
    std::lock_guard lock(dispatch_mu);
    spmv.run(w.x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(std::to_string(state.threads()) +
                 " caller(s), serialized mailbox");
}

void BM_SmallSpmv(benchmark::State& state, bool use_engine) {
  Workload& w = workload(static_cast<int>(state.range(0)));
  const optimize::Plan plan;  // baseline balanced-static CSR
  const auto spmv =
      use_engine ? optimize::OptimizedSpmv::create(w.a, plan, team())
                 : optimize::OptimizedSpmv::create(w.a, plan);
  for (auto _ : state) {
    spmv.run(w.x.data(), w.y.data());
    benchmark::DoNotOptimize(w.y.data());
  }
  const int g = grid_side(static_cast<int>(state.range(0)));
  state.SetLabel("stencil " + std::to_string(g) + "^3, " +
                 std::to_string(w.a.nnz()) + " nnz");
}

void BM_Batch(benchmark::State& state, bool batched) {
  constexpr int kRhs = 8;
  Workload& w = workload(static_cast<int>(state.range(0)));
  const auto spmv = optimize::OptimizedSpmv::create(w.a, {}, team());
  const std::size_t n = static_cast<std::size_t>(w.a.ncols());
  const std::size_t m = static_cast<std::size_t>(w.a.nrows());
  std::vector<value_t> X(n * kRhs), Y(m * kRhs);
  for (std::size_t i = 0; i < X.size(); ++i)
    X[i] = static_cast<value_t>(i % 13) * 0.25;
  for (auto _ : state) {
    if (batched) {
      spmv.run_many(X.data(), Y.data(), kRhs);
    } else {
      for (int r = 0; r < kRhs; ++r) spmv.run(X.data() + n * r, Y.data() + m * r);
    }
    benchmark::DoNotOptimize(Y.data());
  }
  state.SetLabel(std::to_string(kRhs) + " rhs, " +
                 (batched ? "one dispatch" : "per-rhs dispatch"));
}

}  // namespace

BENCHMARK(BM_DispatchEngine)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_DispatchOmp)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_DispatchPool)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_ContendedPool)
    ->Threads(1)->Threads(4)->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ContendedMailbox)
    ->Threads(1)->Threads(4)->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SmallSpmv, engine, true)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SmallSpmv, omp, false)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Batch, run_many, true)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Batch, looped_run, false)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
