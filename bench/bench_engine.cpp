// Engine dispatch-overhead microbenchmarks (google-benchmark).
//
// The persistent-team engine exists to amortize parallel-region startup:
// OpenMP's fork/join costs microseconds per call, which dominates SpMV on
// small operands (an 8^3 stencil SpMV is ~1us of useful work).  Measured
// here:
//   * BM_Dispatch/engine   — a no-op team dispatch (condvar wake + barrier),
//     the engine's fixed per-call cost;
//   * BM_Dispatch/omp      — an empty `#pragma omp parallel` region, the
//     fork/join cost the engine replaces;
//   * BM_SmallSpmv/...     — the same plan on the same small matrix, engine
//     vs OpenMP execution, across operand sizes where overhead matters;
//   * BM_Batch/...         — run_many(nrhs) vs nrhs separate run() calls:
//     one dispatch amortized over a batch.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "optimize/optimized_spmv.hpp"
#include "support/cpu_info.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace {

using namespace spmvopt;

engine::ExecutionEngine& team() {
  static engine::ExecutionEngine eng(
      engine::EngineConfig{.pin = PinPolicy::None});
  return eng;
}

// Grid side per size class: 8^3 = 512 rows (overhead-bound) up to
// 32^3 = 32768 rows (compute starts to dominate).
int grid_side(int cls) { return cls == 0 ? 8 : cls == 1 ? 16 : 32; }

struct Workload {
  CsrMatrix a;
  std::vector<value_t> x;
  std::vector<value_t> y;

  explicit Workload(int g)
      : a(gen::stencil_3d_7pt(g, g, g)),
        x(gen::test_vector(a.ncols())),
        y(static_cast<std::size_t>(a.nrows())) {}
};

Workload& workload(int cls) {
  static Workload small{grid_side(0)};
  static Workload mid{grid_side(1)};
  static Workload large{grid_side(2)};
  switch (cls) {
    case 0: return small;
    case 1: return mid;
    default: return large;
  }
}

void BM_DispatchEngine(benchmark::State& state) {
  engine::ExecutionEngine& eng = team();
  for (auto _ : state) {
    eng.parallel([](int, int) {});
  }
  state.SetLabel(std::to_string(eng.nthreads()) + " thread(s)");
}

void BM_DispatchOmp(benchmark::State& state) {
  int sink = 0;
  for (auto _ : state) {
#if defined(_OPENMP)
#pragma omp parallel
    {
#pragma omp atomic
      ++sink;
    }
#else
    ++sink;
#endif
    benchmark::DoNotOptimize(sink);
  }
}

void BM_SmallSpmv(benchmark::State& state, bool use_engine) {
  Workload& w = workload(static_cast<int>(state.range(0)));
  const optimize::Plan plan;  // baseline balanced-static CSR
  const auto spmv =
      use_engine ? optimize::OptimizedSpmv::create(w.a, plan, team())
                 : optimize::OptimizedSpmv::create(w.a, plan);
  for (auto _ : state) {
    spmv.run(w.x.data(), w.y.data());
    benchmark::DoNotOptimize(w.y.data());
  }
  const int g = grid_side(static_cast<int>(state.range(0)));
  state.SetLabel("stencil " + std::to_string(g) + "^3, " +
                 std::to_string(w.a.nnz()) + " nnz");
}

void BM_Batch(benchmark::State& state, bool batched) {
  constexpr int kRhs = 8;
  Workload& w = workload(static_cast<int>(state.range(0)));
  const auto spmv = optimize::OptimizedSpmv::create(w.a, {}, team());
  const std::size_t n = static_cast<std::size_t>(w.a.ncols());
  const std::size_t m = static_cast<std::size_t>(w.a.nrows());
  std::vector<value_t> X(n * kRhs), Y(m * kRhs);
  for (std::size_t i = 0; i < X.size(); ++i)
    X[i] = static_cast<value_t>(i % 13) * 0.25;
  for (auto _ : state) {
    if (batched) {
      spmv.run_many(X.data(), Y.data(), kRhs);
    } else {
      for (int r = 0; r < kRhs; ++r) spmv.run(X.data() + n * r, Y.data() + m * r);
    }
    benchmark::DoNotOptimize(Y.data());
  }
  state.SetLabel(std::to_string(kRhs) + " rhs, " +
                 (batched ? "one dispatch" : "per-rhs dispatch"));
}

}  // namespace

BENCHMARK(BM_DispatchEngine)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_DispatchOmp)->Unit(benchmark::kNanosecond);
BENCHMARK_CAPTURE(BM_SmallSpmv, engine, true)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SmallSpmv, omp, false)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Batch, run_many, true)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Batch, looped_run, false)
    ->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
