// Table V — Minimum number of solver iterations required to amortize each
// optimizer's runtime overhead, relative to the MKL-proxy CSR kernel:
//
//   N_iters,min = t_pre / (t_MKL - t_optimizer)
//
// Rows: trivial-single, trivial-combined, profile-guided, feature-guided,
// Inspector-Executor.  Columns: best / average / worst over the evaluation
// suite (matrices where the optimizer does not beat MKL are skipped, as the
// overhead can then never amortize).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "report/environment.hpp"
#include "support/env.hpp"
#include "gen/suite.hpp"
#include "gen/generators.hpp"
#include "classify/feature_classifier.hpp"
#include "mklcompat/inspector_executor.hpp"
#include "mklcompat/ref_csr.hpp"
#include "optimize/optimizers.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace {

using namespace spmvopt;

/// Seconds per SpMV with the paper's Table V protocol (64 iterations).
template <class Fn>
double sec_per_op(const CsrMatrix& a, const Fn& fn, int iters) {
  const std::vector<value_t> x = gen::test_vector(a.ncols());
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows()));
  fn(x.data(), y.data());  // warm
  Timer t;
  for (int i = 0; i < iters; ++i) fn(x.data(), y.data());
  return t.elapsed_sec() / iters;
}

struct Amortization {
  std::vector<double> n_iters;  // per matrix where amortization is possible
  int never = 0;                // matrices where the optimizer never wins
};

}  // namespace

int main() {
  report::print_host_preamble(
      "Table V: solver iterations to amortize optimizer overhead vs MKL-proxy");

  const int iters = quick_mode() ? 16 : 64;  // the paper's "64 SpMV iterations"
  optimize::OptimizerConfig cfg;             // decision-phase effort
  cfg.measure.iterations = quick_mode() ? 4 : 16;
  cfg.measure.runs = 1;
  cfg.measure.warmup = 1;

  // Feature-guided optimizer needs its offline model (cost not charged).
  const int pool_size = quick_mode() ? 30 : 80;
  std::printf("training feature-guided classifier (%d pool matrices, offline)...\n\n",
              pool_size);
  std::vector<CsrMatrix> pool;
  for (const auto& e : gen::training_pool(pool_size)) pool.push_back(e.make());
  perf::BoundsConfig label_cfg;
  label_cfg.measure.iterations = 8;
  label_cfg.measure.runs = 1;
  label_cfg.measure.warmup = 1;
  const auto trained =
      classify::train_from_pool(pool, features::onnz_feature_set(), {}, label_cfg);
  pool.clear();

  std::map<std::string, Amortization> rows;
  const char* kOrder[] = {"trivial-single", "trivial-combined",
                          "profile-guided", "feature-guided",
                          "MKL Inspector-Executor"};

  for (const auto& entry : gen::evaluation_suite(report::suite_scale())) {
    const CsrMatrix a = entry.make();
    const double t_mkl = sec_per_op(
        a, [&a](const value_t* x, value_t* y) { mklcompat::ref_dcsrmv(a, x, y); },
        iters);

    auto account = [&](const char* name, double t_pre, double t_opt) {
      if (t_opt >= t_mkl) {
        ++rows[name].never;
        return;
      }
      rows[name].n_iters.push_back(t_pre / (t_mkl - t_opt));
    };

    {
      const auto out = optimize::optimize_trivial_single(a, cfg);
      account("trivial-single", out.preprocess_seconds,
              sec_per_op(a, [&out](const value_t* x, value_t* y) {
                out.spmv.run(x, y);
              }, iters));
    }
    {
      const auto out = optimize::optimize_trivial_combined(a, cfg);
      account("trivial-combined", out.preprocess_seconds,
              sec_per_op(a, [&out](const value_t* x, value_t* y) {
                out.spmv.run(x, y);
              }, iters));
    }
    {
      const auto out = optimize::optimize_profile(a, cfg);
      account("profile-guided", out.preprocess_seconds,
              sec_per_op(a, [&out](const value_t* x, value_t* y) {
                out.spmv.run(x, y);
              }, iters));
    }
    {
      const auto out = optimize::optimize_feature(a, trained.classifier, cfg);
      account("feature-guided", out.preprocess_seconds,
              sec_per_op(a, [&out](const value_t* x, value_t* y) {
                out.spmv.run(x, y);
              }, iters));
    }
    {
      const auto ie = mklcompat::InspectorExecutorSpmv::analyze(a);
      account("MKL Inspector-Executor", ie.analysis_seconds(),
              sec_per_op(a, [&ie](const value_t* x, value_t* y) {
                ie.execute(x, y);
              }, iters));
    }
    std::printf("  measured %s\n", entry.name.c_str());
    std::fflush(stdout);
  }

  std::printf("\n");
  Table table({"optimizer", "Niters_best", "Niters_avg", "Niters_worst",
               "no_win_matrices"});
  for (const char* name : kOrder) {
    const Amortization& am = rows[name];
    if (am.n_iters.empty()) {
      table.add_row({name, "-", "-", "-", std::to_string(am.never)});
      continue;
    }
    table.add_row({name, Table::num(std::ceil(min_of(am.n_iters)), 0),
                   Table::num(std::ceil(arithmetic_mean(am.n_iters)), 0),
                   Table::num(std::ceil(max_of(am.n_iters)), 0),
                   std::to_string(am.never)});
  }
  table.print(std::cout);
  std::printf("\n(no_win_matrices: suite entries where the optimized kernel "
              "did not beat the MKL-proxy, so no iteration count amortizes)\n");
  return 0;
}
