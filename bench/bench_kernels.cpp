// Kernel microbenchmarks (google-benchmark): ns/op and effective GB/s for
// every kernel variant in the optimization pool, on four structurally
// distinct representatives (regular stencil, irregular random, skewed
// power-law, one-monster-row).  Complements the figure benches with
// per-kernel latency data; the monster-row cell pits the merge-path plan
// against dynamic-scheduled CSR on the worst-case IMB shape.
//
// The named-kernel axis is driven by kernels::registry(): each registered
// variant is bound once per workload (conversions and partitions paid at
// registration, as in real use) and benchmarked through its BoundSpmv.
// Variants whose requirements a workload cannot satisfy (e.g. `sym` on a
// non-symmetric matrix) are skipped at registration time.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "kernels/registry.hpp"
#include "optimize/optimized_spmv.hpp"
#include "support/cpu_info.hpp"

namespace {

using namespace spmvopt;

struct Workload {
  CsrMatrix a;
  std::vector<value_t> x;
  std::vector<value_t> y;

  explicit Workload(CsrMatrix m)
      : a(std::move(m)),
        x(gen::test_vector(a.ncols())),
        y(static_cast<std::size_t>(a.nrows())) {}
};

Workload& workload(int which) {
  static Workload stencil{gen::stencil_3d_7pt(32, 32, 32)};
  static Workload random{gen::random_uniform(40000, 12, 3)};
  static Workload skewed{gen::few_dense_rows(40000, 3, 6, 30000, 5)};
  static Workload monster{gen::monster_row(60000, 60000, 2, 0, 7)};
  switch (which) {
    case 0: return stencil;
    case 1: return random;
    case 2: return skewed;
    default: return monster;
  }
}

const char* workload_name(int which) {
  switch (which) {
    case 0: return "stencil3d";
    case 1: return "random";
    case 2: return "skewed";
    default: return "monsterrow";
  }
}

void set_counters(benchmark::State& state, const CsrMatrix& a) {
  state.counters["nnz"] = static_cast<double>(a.nnz());
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
  state.counters["GBps"] = benchmark::Counter(
      static_cast<double>(a.working_set_bytes()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1024);
}

void BM_Plan(benchmark::State& state, optimize::Plan plan) {
  Workload& w = workload(static_cast<int>(state.range(0)));
  const auto spmv = optimize::OptimizedSpmv::create(w.a, plan);
  for (auto _ : state) {
    spmv.run(w.x.data(), w.y.data());
    benchmark::DoNotOptimize(w.y.data());
  }
  set_counters(state, w.a);
  state.SetLabel(std::string(workload_name(static_cast<int>(state.range(0)))) +
                 "/" + spmv.plan().to_string());
}

optimize::Plan make_plan(kernels::Sched s, bool pf, kernels::Compute c,
                         bool delta, bool split) {
  optimize::Plan p;
  p.sched = s;
  p.prefetch = pf;
  p.compute = c;
  p.delta = delta;
  p.split_long_rows = split;
  return p;
}

optimize::Plan merge_plan() {
  optimize::Plan p;
  p.merge_path = true;
  return p;
}

void register_registry_benchmarks() {
  const int threads = default_threads();
  for (const kernels::KernelVariant& v : kernels::registry()) {
    for (int which = 0; which < 4; ++which) {
      Workload& w = workload(which);
      kernels::BoundSpmv bound = v.bind(w.a, threads);
      if (!bound) continue;  // requirements unmet on this workload
      const std::string name =
          std::string("BM_Kernel/") + v.name + "/" + workload_name(which);
      benchmark::RegisterBenchmark(
          name.c_str(), [&w, bound = std::move(bound)](benchmark::State& state) {
            for (auto _ : state) {
              bound(w.x.data(), w.y.data());
              benchmark::DoNotOptimize(w.y.data());
            }
            set_counters(state, w.a);
          })->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Plan, baseline, optimize::Plan{})
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, prefetch,
                  make_plan(kernels::Sched::BalancedStatic, true,
                            kernels::Compute::Scalar, false, false))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, vector,
                  make_plan(kernels::Sched::BalancedStatic, false,
                            kernels::Compute::Vector, false, false))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, unroll_vector,
                  make_plan(kernels::Sched::BalancedStatic, false,
                            kernels::Compute::UnrollVector, false, false))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, delta_vector,
                  make_plan(kernels::Sched::BalancedStatic, false,
                            kernels::Compute::Vector, true, false))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, auto_sched,
                  make_plan(kernels::Sched::Auto, false,
                            kernels::Compute::Scalar, false, false))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, split_long_rows,
                  make_plan(kernels::Sched::BalancedStatic, false,
                            kernels::Compute::Scalar, false, true))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, pf_vec_auto,
                  make_plan(kernels::Sched::Auto, true,
                            kernels::Compute::Vector, false, false))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
// The merge-vs-dynamic IMB cell: on the monster-row workload (range index 3)
// the merge-path plan should beat dynamic-scheduled CSR, the best
// row-parallel fallback for extreme skew.
BENCHMARK_CAPTURE(BM_Plan, merge_path, merge_plan())
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Plan, dynamic_csr,
                  make_plan(kernels::Sched::Dynamic, false,
                            kernels::Compute::Scalar, false, false))
    ->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  register_registry_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
