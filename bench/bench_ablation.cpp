// Ablations over the design choices DESIGN.md §4 calls out (not in the
// paper, which fixes these by fiat):
//   1. software-prefetch distance (the paper fixes it to one cache line),
//   2. delta width forced to 8 vs 16 bit (where both are possible),
//   3. dynamic-scheduling chunk size vs OpenMP auto,
//   4. long-row split threshold around the default max(64, 8*avg).
#include <cstdio>
#include <cmath>
#include <iostream>
#include <vector>

#include "report/environment.hpp"
#include "support/cpu_info.hpp"
#include "gen/generators.hpp"
#include "kernels/compose.hpp"
#include "kernels/spmv.hpp"
#include "optimize/optimized_spmv.hpp"
#include "sparse/reorder.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace spmvopt;

}  // namespace

int main() {
  report::print_host_preamble("Ablations: prefetch distance, delta width, "
                             "chunk size, split threshold");
  const perf::MeasureConfig m = perf::MeasureConfig::from_env();
  const double scale = report::suite_scale();

  // 1. Prefetch distance on an irregular (ML-class) matrix.
  {
    const CsrMatrix a = gen::random_uniform(
        static_cast<index_t>(150000 * scale), 10, 3);
    const auto part = balanced_nnz_partition(a.rowptr(), a.nrows(),
                                             default_threads());
    Table t({"pf_distance_elems", "gflops"});
    t.add_row({"0 (no prefetch)",
               Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                 kernels::spmv_balanced(a, part, x, y);
               }, m), 2)});
    for (index_t dist : {2, 4, 8, 16, 32, 64}) {
      t.add_row({std::to_string(dist),
                 Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                   kernels::spmv_prefetch(a, part, x, y, dist);
                 }, m), 2)});
    }
    std::printf("-- prefetch distance (random_uniform; paper fixes 1 line = %zu elems)\n",
                cpu_info().doubles_per_line());
    t.print(std::cout);
    std::printf("\n");
  }

  // 2. Delta width: force u16 on a u8-eligible matrix to price the choice.
  {
    const CsrMatrix a = gen::banded(static_cast<index_t>(120000 * scale),
                                    120, 24, 9);
    const auto part = balanced_nnz_partition(a.rowptr(), a.nnz() >= 0 ? a.nrows() : 0,
                                             default_threads());
    Table t({"index_encoding", "format_MiB", "gflops"});
    t.add_row({"raw 32-bit",
               Table::num(static_cast<double>(a.format_bytes()) / (1 << 20), 2),
               Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                 kernels::spmv_vector(a, part, x, y);
               }, m), 2)});
    const auto d8 = DeltaCsrMatrix::encode(a);
    if (d8 && d8->width() == DeltaWidth::U8) {
      t.add_row({"delta u8",
                 Table::num(static_cast<double>(d8->format_bytes()) / (1 << 20), 2),
                 Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                   kernels::spmv_delta_vector(*d8, part, x, y);
                 }, m), 2)});
    }
    std::printf("-- index compression (banded matrix)\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // 3. Dynamic chunk size vs auto on a power-law (IMB-class) matrix.
  {
    const CsrMatrix a = gen::power_law(static_cast<index_t>(200000 * scale),
                                       12, 1.8, 7);
    Table t({"schedule", "gflops"});
    for (int chunk : {1, 8, 64, 512}) {
      t.add_row({"dynamic," + std::to_string(chunk),
                 Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                   kernels::spmv_omp_dynamic(a, x, y, chunk);
                 }, m), 2)});
    }
    t.add_row({"guided", Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                 kernels::spmv_omp_guided(a, x, y);
               }, m), 2)});
    t.add_row({"auto (paper's IMB choice)",
               Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                 kernels::spmv_omp_auto(a, x, y);
               }, m), 2)});
    std::printf("-- scheduling (power-law matrix)\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // 4. Long-row split threshold on a few-dense-rows matrix.
  {
    const index_t n = static_cast<index_t>(150000 * scale);
    const CsrMatrix a = gen::few_dense_rows(n, 3, 8, n / 2, 11);
    const index_t dflt = SplitCsrMatrix::default_threshold(a);
    Table t({"split_threshold", "long_rows", "gflops"});
    for (index_t thr : {dflt / 4, dflt / 2, dflt, dflt * 2, dflt * 8}) {
      if (thr < 1) continue;
      const SplitCsrMatrix s = SplitCsrMatrix::split(a, thr);
      const auto part = balanced_nnz_partition(
          s.short_part().rowptr(), s.short_part().nrows(), default_threads());
      const std::string label = std::to_string(thr) +
                                (thr == dflt ? " (default)" : "");
      t.add_row({label, std::to_string(s.num_long_rows()),
                 Table::num(perf::measure_gflops(a, [&](const value_t* x, value_t* y) {
                   kernels::spmv_split(s, part, x, y);
                 }, m), 2)});
    }
    std::printf("-- long-row split threshold (few-dense-rows matrix)\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // 5. Extension formats (§V plug-and-play): SELL-C-σ and register-blocked
  //    CSR against the CSR-based pool, on a stencil (regular) and a blocked
  //    (FEM-like) matrix.
  {
    struct Workload {
      const char* name;
      CsrMatrix a;
    };
    const index_t g = static_cast<index_t>(220 * std::sqrt(scale));
    Workload workloads[] = {
        {"stencil2d", gen::stencil_2d_5pt(g, g)},
        {"block-fem", gen::block_diagonal_dense(
                          static_cast<index_t>(20000 * scale), 8, 31)},
    };
    Table t({"matrix", "plan", "gflops", "format_MiB"});
    for (auto& w : workloads) {
      std::vector<optimize::Plan> plans;
      plans.push_back(optimize::Plan{});
      optimize::Plan vec;
      vec.compute = kernels::Compute::Vector;
      plans.push_back(vec);
      optimize::Plan dvec = vec;
      dvec.delta = true;
      plans.push_back(dvec);
      plans.push_back(optimize::sell_plan());
      plans.push_back(optimize::bcsr_plan());
      for (const auto& plan : plans) {
        const auto spmv = optimize::OptimizedSpmv::create(w.a, plan);
        t.add_row({w.name, spmv.plan().to_string(),
                   Table::num(perf::measure_gflops(w.a, [&](const value_t* x, value_t* y) {
                     spmv.run(x, y);
                   }, m), 2),
                   Table::num(static_cast<double>(spmv.format_bytes()) / (1 << 20), 2)});
      }
    }
    std::printf("-- extension formats vs CSR pool\n");
    t.print(std::cout);
    std::printf("\n");
  }

  // 6. RCM reordering vs software prefetching on an artificially scrambled
  //    stencil: prefetching *hides* x-access latency (the paper's ML
  //    optimization), RCM *removes* the irregularity.
  {
    const auto g = static_cast<index_t>(380 * std::sqrt(scale));
    const CsrMatrix grid = gen::stencil_2d_5pt(g, g);
    Xoshiro256 rng(17);
    Permutation shuffle = Permutation::identity(grid.nrows());
    for (index_t i = grid.nrows() - 1; i > 0; --i)
      std::swap(shuffle.perm[static_cast<std::size_t>(i)],
                shuffle.perm[rng.bounded(static_cast<std::uint64_t>(i) + 1)]);
    const CsrMatrix scrambled = permute_symmetric(grid, shuffle);
    const CsrMatrix rcm =
        permute_symmetric(scrambled, reverse_cuthill_mckee(scrambled));
    const auto part_s = balanced_nnz_partition(scrambled.rowptr(),
                                               scrambled.nrows(), default_threads());
    const auto part_r = balanced_nnz_partition(rcm.rowptr(), rcm.nrows(),
                                               default_threads());
    Table t({"variant", "bandwidth", "gflops"});
    t.add_row({"scrambled baseline", std::to_string(matrix_bandwidth(scrambled)),
               Table::num(perf::measure_gflops(scrambled, [&](const value_t* x, value_t* y) {
                 kernels::spmv_balanced(scrambled, part_s, x, y);
               }, m), 2)});
    t.add_row({"scrambled + prefetch", std::to_string(matrix_bandwidth(scrambled)),
               Table::num(perf::measure_gflops(scrambled, [&](const value_t* x, value_t* y) {
                 kernels::spmv_prefetch(scrambled, part_s, x, y,
                                        static_cast<index_t>(cpu_info().doubles_per_line()));
               }, m), 2)});
    t.add_row({"RCM-reordered baseline", std::to_string(matrix_bandwidth(rcm)),
               Table::num(perf::measure_gflops(rcm, [&](const value_t* x, value_t* y) {
                 kernels::spmv_balanced(rcm, part_r, x, y);
               }, m), 2)});
    std::printf("-- RCM reordering vs prefetching (scrambled 2-D stencil)\n");
    t.print(std::cout);
  }
  return 0;
}
