// Fig. 7 — The SpMV performance landscape: MKL-proxy CSR, MKL-proxy
// Inspector-Executor, our baseline, the oracle, and the profile- and
// feature-guided optimizers, per matrix of the evaluation suite, plus the
// classes the profile-guided classifier detected (the annotations above the
// paper's bars).
//
// The paper shows three platforms (KNC/KNL/Broadwell); this bench runs on
// the host it is executed on and the optimizer re-tunes itself here —
// that is the architecture-adaptivity claim (DESIGN.md §3).  The summary
// lines at the end are the paper's headline "average speedup over MKL CSR"
// numbers for this host.
#include <cstdio>
#include <iostream>
#include <vector>

#include "report/environment.hpp"
#include "support/env.hpp"
#include "gen/suite.hpp"
#include "gen/generators.hpp"
#include "classify/feature_classifier.hpp"
#include "mklcompat/inspector_executor.hpp"
#include "mklcompat/ref_csr.hpp"
#include "optimize/optimizers.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace {

using namespace spmvopt;

}  // namespace

int main() {
  report::print_host_preamble(
      "Fig. 7: SpMV performance landscape (Gflop/s per optimizer)");

  const perf::MeasureConfig m = perf::MeasureConfig::from_env();
  // Decision phases (profiling runs, oracle/trivial sweeps) use a cheaper
  // budget; the *reported* rate of every selected kernel uses the full one.
  optimize::OptimizerConfig decide_cfg;
  decide_cfg.measure.iterations = std::max(8, m.iterations / 2);
  decide_cfg.measure.runs = 2;
  decide_cfg.measure.warmup = 1;

  // Offline stage of the feature-guided optimizer: train on the pool.
  const int pool_size = quick_mode() ? 40 : 120;
  std::printf("training feature-guided classifier on %d pool matrices...\n",
              pool_size);
  Timer train_timer;
  std::vector<CsrMatrix> pool;
  for (const auto& e : gen::training_pool(pool_size)) pool.push_back(e.make());
  perf::BoundsConfig label_cfg;
  label_cfg.measure.iterations = quick_mode() ? 4 : 12;
  label_cfg.measure.runs = 1;
  label_cfg.measure.warmup = 1;
  const auto trained =
      classify::train_from_pool(pool, features::onnz_feature_set(), {}, label_cfg);
  pool.clear();
  std::printf("offline training took %.1f s\n\n", train_timer.elapsed_sec());

  // oracle_ext additionally searches the SELL-C-σ / BCSR extension formats —
  // the headroom beyond the paper's CSR pool on this host.
  optimize::OptimizerConfig ext_cfg = decide_cfg;
  ext_cfg.oracle_extensions = true;

  Table table({"matrix", "classes", "MKL", "MKL_IE", "baseline", "oracle",
               "prof", "feat", "oracle_ext"});
  std::vector<double> sp_prof, sp_feat, sp_ie, sp_oracle, sp_ext;

  for (const auto& entry : gen::evaluation_suite(report::suite_scale())) {
    const CsrMatrix a = entry.make();

    const double mkl = perf::measure_gflops(
        a, [&a](const value_t* x, value_t* y) { mklcompat::ref_dcsrmv(a, x, y); },
        m);
    const auto ie = mklcompat::InspectorExecutorSpmv::analyze(a);
    const double ie_gflops = perf::measure_gflops(
        a, [&ie](const value_t* x, value_t* y) { ie.execute(x, y); }, m);

    const auto baseline = optimize::OptimizedSpmv::create(a, optimize::Plan{});
    const double base = optimize::measure_spmv_gflops(baseline, a, m);

    const auto oracle = optimize::optimize_oracle(a, decide_cfg);
    const double oracle_gflops = optimize::measure_spmv_gflops(oracle.spmv, a, m);

    const auto prof = optimize::optimize_profile(a, decide_cfg);
    const double prof_gflops = optimize::measure_spmv_gflops(prof.spmv, a, m);

    const auto feat = optimize::optimize_feature(a, trained.classifier, decide_cfg);
    const double feat_gflops = optimize::measure_spmv_gflops(feat.spmv, a, m);

    const auto ext = optimize::optimize_oracle(a, ext_cfg);
    const double ext_gflops = optimize::measure_spmv_gflops(ext.spmv, a, m);

    table.add_row({entry.name, prof.classes.to_string(), Table::num(mkl, 2),
                   Table::num(ie_gflops, 2), Table::num(base, 2),
                   Table::num(oracle_gflops, 2), Table::num(prof_gflops, 2),
                   Table::num(feat_gflops, 2), Table::num(ext_gflops, 2)});
    sp_prof.push_back(prof_gflops / mkl);
    sp_feat.push_back(feat_gflops / mkl);
    sp_ie.push_back(ie_gflops / mkl);
    sp_oracle.push_back(oracle_gflops / mkl);
    sp_ext.push_back(ext_gflops / mkl);
    std::fflush(stdout);
  }
  table.print(std::cout);

  std::printf("\naverage speedup over MKL-proxy CSR (arithmetic mean, as in §IV-C):\n");
  std::printf("  profile-guided     %.2fx\n", arithmetic_mean(sp_prof));
  std::printf("  feature-guided     %.2fx\n", arithmetic_mean(sp_feat));
  std::printf("  inspector-executor %.2fx\n", arithmetic_mean(sp_ie));
  std::printf("  oracle             %.2fx\n", arithmetic_mean(sp_oracle));
  std::printf("  oracle+extensions  %.2fx   (SELL-C-sigma / BCSR headroom)\n",
              arithmetic_mean(sp_ext));
  return 0;
}
