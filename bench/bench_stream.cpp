// Table III (bandwidth rows) — STREAM triad sustainable bandwidth on this
// host, swept across working-set sizes so both operating points the paper
// reports (main memory and LLC) are visible, plus the cache-transition curve
// between them.
#include <cstdio>
#include <iostream>

#include "report/environment.hpp"
#include "support/env.hpp"
#include "support/cpu_info.hpp"
#include "perf/stream.hpp"
#include "support/table.hpp"

int main() {
  using namespace spmvopt;
  const CpuInfo& cpu = cpu_info();
  std::printf("# Table III: STREAM triad bandwidth (this host)\n");
  std::printf("# host: %s | %d threads | L1d %zu KiB | L2 %zu KiB | LLC %zu KiB\n\n",
              cpu.model_name.empty() ? "(unknown)" : cpu.model_name.c_str(),
              default_threads(), cpu.l1d_bytes / 1024, cpu.l2_bytes / 1024,
              cpu.llc_bytes / 1024);

  const int threads = default_threads();
  const int reps = quick_mode() ? 3 : 10;

  Table table({"working_set", "region", "triad_GBps"});
  // Sweep from L1-resident to 4x LLC.
  for (double factor : {0.25, 0.5, 1.0}) {
    const auto elems = static_cast<std::size_t>(
        factor * static_cast<double>(cpu.l1d_bytes) / (3 * sizeof(double)));
    if (elems < 64) continue;
    table.add_row({std::to_string(3 * elems * sizeof(double) / 1024) + " KiB",
                   "L1", Table::num(perf::stream_triad_gbps(elems, threads, reps), 1)});
  }
  for (double factor : {0.5, 1.0}) {
    const auto elems = static_cast<std::size_t>(
        factor * static_cast<double>(cpu.l2_bytes) / (3 * sizeof(double)));
    table.add_row({std::to_string(3 * elems * sizeof(double) / 1024) + " KiB",
                   "L2", Table::num(perf::stream_triad_gbps(elems, threads, reps), 1)});
  }
  for (double factor : {0.25, 0.5}) {
    const auto elems = static_cast<std::size_t>(
        factor * static_cast<double>(cpu.llc_bytes) / (3 * sizeof(double)));
    table.add_row({std::to_string(3 * elems * sizeof(double) / (1024 * 1024)) + " MiB",
                   "LLC", Table::num(perf::stream_triad_gbps(elems, threads, reps), 1)});
  }
  for (double factor : {1.5, 4.0}) {
    const auto elems = static_cast<std::size_t>(
        factor * static_cast<double>(cpu.llc_bytes) / (3 * sizeof(double)));
    table.add_row({std::to_string(3 * elems * sizeof(double) / (1024 * 1024)) + " MiB",
                   "DRAM", Table::num(perf::stream_triad_gbps(elems, threads, reps), 1)});
  }
  table.print(std::cout);

  const perf::BandwidthProfile& bw = perf::bandwidth_profile();
  std::printf("\nTable III row for this host: STREAM triad main/llc = "
              "%.0f/%.0f GB/s\n", bw.dram_gbps, bw.llc_gbps);
  return 0;
}
