// Fig. 3 — Baseline CSR performance and the per-class upper bounds
// (P_ML, P_IMB, P_CMP, P_MB, P_peak) of §III-B, per matrix.
//
// The relations the paper reads off this figure (and that the profile-guided
// classifier's rules encode) can be checked per row:
//   P_CSR ≈ P_ML   → no latency bottleneck
//   P_ML >> P_CSR  → ML class, etc.
#include <cstdio>
#include <iostream>

#include "report/environment.hpp"
#include "gen/suite.hpp"
#include "classify/profile_classifier.hpp"
#include "perf/bounds.hpp"
#include "support/table.hpp"

int main() {
  using namespace spmvopt;
  report::print_host_preamble(
      "Fig. 3: CSR baseline and per-class upper bounds (Gflop/s)");

  perf::BoundsConfig cfg;
  cfg.measure = perf::MeasureConfig::from_env();

  Table table({"matrix", "CSR", "ML", "IMB", "CMP", "MB", "Peak", "fits_llc",
               "classes"});
  for (const auto& entry : gen::evaluation_suite(report::suite_scale())) {
    const CsrMatrix a = entry.make();
    const perf::PerfBounds b = perf::measure_bounds(a, cfg);
    const auto classes = classify::classify_from_bounds(b);
    table.add_row({entry.name, Table::num(b.p_csr, 2), Table::num(b.p_ml, 2),
                   Table::num(b.p_imb, 2), Table::num(b.p_cmp, 2),
                   Table::num(b.p_mb, 2), Table::num(b.p_peak, 2),
                   b.fits_llc ? "yes" : "no", classes.to_string()});
    std::fflush(stdout);
  }
  table.print(std::cout);
  return 0;
}
