// End-to-end solver time-to-solution — Table V applied.
//
// Runs CG on a 3-D Poisson problem and BiCGSTAB on a nonsymmetric random
// system with each optimizer's kernel, charging every optimizer its full
// preprocessing cost.  The winner depends on iteration count vs t_pre,
// which is exactly the §IV-D argument for lightweight optimizers.
#include <cstdio>
#include <cmath>
#include <iostream>

#include "report/environment.hpp"
#include "support/env.hpp"
#include "gen/suite.hpp"
#include "classify/feature_classifier.hpp"
#include "gen/generators.hpp"
#include "mklcompat/inspector_executor.hpp"
#include "mklcompat/ref_csr.hpp"
#include "optimize/optimizers.hpp"
#include "solvers/krylov.hpp"
#include "solvers/preconditioner.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace {

using namespace spmvopt;

struct SolveCase {
  const char* name;
  CsrMatrix a;
  bool spd;
};

void run_case(const SolveCase& sc, const classify::FeatureClassifier& clf,
              const optimize::OptimizerConfig& cfg) {
  const std::vector<value_t> x_true = gen::test_vector(sc.a.ncols(), 7);
  std::vector<value_t> b(static_cast<std::size_t>(sc.a.nrows()));
  sc.a.multiply(x_true, b);
  solvers::SolverOptions opts;
  opts.max_iterations = 5000;
  opts.rel_tolerance = 1e-10;

  auto solve_with = [&](const solvers::LinearOperator& op) {
    std::vector<value_t> x(static_cast<std::size_t>(sc.a.nrows()), 0.0);
    Timer t;
    const auto r = sc.spd ? solvers::cg(op, b, x, opts)
                          : solvers::bicgstab(op, b, x, opts);
    return std::tuple{t.elapsed_sec(), r.iterations, r.converged};
  };

  Table t({"kernel", "t_pre_ms", "solve_s", "total_s", "iterations", "ok"});
  auto add = [&t](const char* name, double pre, double solve, int iters,
                  bool ok) {
    t.add_row({name, Table::num(pre * 1e3, 1), Table::num(solve, 3),
               Table::num(pre + solve, 3), std::to_string(iters),
               ok ? "yes" : "NO"});
  };

  {
    const auto op = solvers::LinearOperator::from_csr(sc.a);
    const auto [sec, iters, ok] = solve_with(op);
    add("baseline CSR", 0.0, sec, iters, ok);
  }
  {
    solvers::LinearOperator op(sc.a.nrows(), sc.a.ncols(),
                               [&sc](const value_t* x, value_t* y) {
                                 mklcompat::ref_dcsrmv(sc.a, x, y);
                               });
    const auto [sec, iters, ok] = solve_with(op);
    add("MKL-proxy", 0.0, sec, iters, ok);
  }
  {
    Timer pre;
    const auto ie = mklcompat::InspectorExecutorSpmv::analyze(sc.a);
    const double pre_sec = pre.elapsed_sec();
    solvers::LinearOperator op(sc.a.nrows(), sc.a.ncols(),
                               [&ie](const value_t* x, value_t* y) {
                                 ie.execute(x, y);
                               });
    const auto [sec, iters, ok] = solve_with(op);
    add("inspector-executor", pre_sec, sec, iters, ok);
  }
  {
    const auto out = optimize::optimize_profile(sc.a, cfg);
    const auto op = solvers::LinearOperator::from_optimized(out.spmv);
    const auto [sec, iters, ok] = solve_with(op);
    add("profile-guided", out.preprocess_seconds, sec, iters, ok);
  }
  {
    const auto out = optimize::optimize_feature(sc.a, clf, cfg);
    const auto op = solvers::LinearOperator::from_optimized(out.spmv);
    const auto [sec, iters, ok] = solve_with(op);
    add("feature-guided", out.preprocess_seconds, sec, iters, ok);
  }
  if (sc.spd) {
    // Preconditioning slashes iterations — the regime where only the
    // lightest optimizer amortizes (§IV-D).
    const auto out = optimize::optimize_feature(sc.a, clf, cfg);
    const auto op = solvers::LinearOperator::from_optimized(out.spmv);
    std::vector<value_t> x(static_cast<std::size_t>(sc.a.nrows()), 0.0);
    Timer t2;
    const auto r = solvers::pcg(op, solvers::SsorPreconditioner(sc.a, 1.5), b,
                                x, opts);
    add("feature-guided + SSOR-PCG", out.preprocess_seconds, t2.elapsed_sec(),
        r.iterations, r.converged);
  }

  std::printf("== %s (n=%d, nnz=%d) ==\n", sc.name, sc.a.nrows(), sc.a.nnz());
  t.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  report::print_host_preamble("Solver time-to-solution per optimizer (applied Table V)");
  const double scale = report::suite_scale();

  optimize::OptimizerConfig cfg;
  cfg.measure.iterations = quick_mode() ? 4 : 16;
  cfg.measure.runs = quick_mode() ? 1 : 2;
  cfg.measure.warmup = 1;

  // Small offline model for the feature-guided rows.
  std::vector<CsrMatrix> pool;
  for (const auto& e : gen::training_pool(quick_mode() ? 30 : 60))
    pool.push_back(e.make());
  perf::BoundsConfig label_cfg;
  label_cfg.measure.iterations = 8;
  label_cfg.measure.runs = 1;
  label_cfg.measure.warmup = 1;
  const auto trained =
      classify::train_from_pool(pool, features::onnz_feature_set(), {}, label_cfg);
  pool.clear();

  const auto g = static_cast<index_t>(52.0 * std::cbrt(scale));
  run_case({"CG / poisson3d", gen::stencil_3d_7pt(g, g, g), true},
           trained.classifier, cfg);
  run_case({"BiCGSTAB / nonsymmetric random",
            gen::make_diagonally_dominant(
                gen::random_uniform(static_cast<index_t>(120000 * scale), 7, 5),
                2.0),
            false},
           trained.classifier, cfg);
  return 0;
}
