// Shared plumbing for the table/figure-reproduction benches.
//
// Environment knobs (all optional):
//   SPMVOPT_SCALE   suite size factor in (0,1], default 1.0 (quick mode 0.35)
//   SPMVOPT_ITERS   SpMV ops per measurement block (default 128 per §IV-A;
//                   quick mode 16)
//   SPMVOPT_RUNS    measurement blocks, harmonic-mean summarized (default 5;
//                   quick mode 2)
//   SPMVOPT_THREADS OpenMP threads (default: all)
//   SPMVOPT_QUICK=1 shrink everything for a smoke run
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/suite.hpp"
#include "perf/measure.hpp"
#include "perf/stream.hpp"
#include "support/cpu_info.hpp"
#include "support/env.hpp"

namespace spmvopt::bench {

inline double suite_scale() {
  const std::string s = env_string("SPMVOPT_SCALE", "");
  if (!s.empty()) {
    const double v = std::atof(s.c_str());
    if (v > 0.0 && v <= 1.0) return v;
    std::fprintf(stderr, "warning: ignoring bad SPMVOPT_SCALE '%s'\n", s.c_str());
  }
  return quick_mode() ? 0.35 : 1.0;
}

/// Print the host characteristics every figure in the paper is conditioned
/// on (the Table III row for this machine).
inline void print_host_preamble(const char* bench_name) {
  const CpuInfo& cpu = cpu_info();
  std::printf("# %s\n", bench_name);
  std::printf("# host: %s | %d threads | LLC %zu KiB | line %zu B\n",
              cpu.model_name.empty() ? "(unknown cpu)" : cpu.model_name.c_str(),
              default_threads(), cpu.llc_bytes / 1024, cpu.cache_line_bytes);
  const perf::BandwidthProfile& bw = perf::bandwidth_profile();
  std::printf("# STREAM triad: %.1f GB/s (DRAM), %.1f GB/s (LLC)\n",
              bw.dram_gbps, bw.llc_gbps);
  const perf::MeasureConfig m = perf::MeasureConfig::from_env();
  std::printf("# methodology: %d runs x %d iterations, harmonic mean; "
              "suite scale %.2f\n\n",
              m.runs, m.iterations, suite_scale());
}

}  // namespace spmvopt::bench
