// Table IV — Feature-guided decision-tree classifier accuracy.
//
// Reproduces the paper's protocol end to end:
//   1. generate the training pool (stand-in for the 210 UF matrices),
//   2. label every matrix with the profile-guided classifier (§III-D3),
//   3. extract Table I features,
//   4. leave-one-out cross-validate a multilabel CART tree on the Θ(N) and
//      Θ(NNZ) feature subsets of Table IV,
//   5. report Exact and Partial Match Ratios.
// Label distribution and the fitted tree are printed for inspection.
#include <cstdio>
#include <iostream>
#include <map>

#include "report/environment.hpp"
#include "support/env.hpp"
#include "gen/suite.hpp"
#include "classify/feature_classifier.hpp"
#include "features/features.hpp"
#include "ml/cross_validation.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

int main() {
  using namespace spmvopt;
  report::print_host_preamble("Table IV: feature-guided classifier accuracy (LOO CV)");

  const int pool_size = quick_mode() ? 60 : 210;

  // Labeling effort: the offline stage can afford moderate profiling.
  perf::BoundsConfig label_cfg;
  label_cfg.measure.iterations = quick_mode() ? 4 : 16;
  label_cfg.measure.runs = 2;
  label_cfg.measure.warmup = 1;

  std::printf("labeling %d pool matrices with the profile-guided classifier...\n",
              pool_size);
  Timer label_timer;
  ml::Dataset full;  // all 14 features; subsets are projected from it
  std::map<std::string, int> label_histogram;
  for (const auto& entry : gen::training_pool(pool_size)) {
    const CsrMatrix a = entry.make();
    const auto f = features::extract_features(a);
    const auto labeled = classify::classify_profile(a, {}, label_cfg);
    std::vector<double> row(static_cast<std::size_t>(features::kFeatureCount));
    for (int i = 0; i < features::kFeatureCount; ++i)
      row[static_cast<std::size_t>(i)] = f[static_cast<features::FeatureId>(i)];
    full.X.push_back(std::move(row));
    full.Y.push_back(labeled.classes.to_labels());
    ++label_histogram[labeled.classes.to_string()];
  }
  std::printf("labeling took %.1f s\n\nlabel distribution:\n",
              label_timer.elapsed_sec());
  for (const auto& [classes, count] : label_histogram)
    std::printf("  %-20s %d\n", classes.c_str(), count);

  auto project = [&full](const std::vector<features::FeatureId>& ids) {
    ml::Dataset ds;
    ds.Y = full.Y;
    for (const auto& row : full.X) {
      std::vector<double> r;
      r.reserve(ids.size());
      for (auto id : ids) r.push_back(row[static_cast<std::size_t>(id)]);
      ds.X.push_back(std::move(r));
    }
    return ds;
  };

  Table table({"features", "complexity", "accuracy_exact_%", "accuracy_partial_%"});
  {
    const auto scores = ml::leave_one_out(project(features::on_feature_set()));
    table.add_row({"nnz{min,max,sd} bw_avg dispersion{avg,sd}", "O(N)",
                   Table::num(100.0 * scores.exact, 0),
                   Table::num(100.0 * scores.partial, 0)});
  }
  {
    const auto scores = ml::leave_one_out(project(features::onnz_feature_set()));
    table.add_row(
        {"size bw{avg,sd} nnz{min,max,avg,sd} misses_avg dispersion_sd",
         "O(NNZ)", Table::num(100.0 * scores.exact, 0),
         Table::num(100.0 * scores.partial, 0)});
  }
  std::printf("\n");
  table.print(std::cout);

  // Fit the O(NNZ) tree on the full pool and show it.
  ml::DecisionTree tree;
  tree.fit(project(features::onnz_feature_set()));
  std::vector<std::string> names;
  for (auto id : features::onnz_feature_set())
    names.push_back(features::feature_name(id));
  std::printf("\nfitted O(NNZ) tree (%zu nodes, depth %d):\n%s\n",
              tree.node_count(), tree.depth(), tree.to_text(names).c_str());
  return 0;
}
