// Fig. 4 (caption) — "Parameters T_ML = 1.25 and T_IMB = 1.24 were optimized
// through exhaustive grid search ... maximizing the average performance gain
// of the corresponding optimizations on a large set of matrices."
//
// This bench reruns that offline tuning on this host, over T_ML, T_IMB and
// the T_CMP guard this implementation adds (DESIGN.md §4):
//   1. measure per-class bounds for every pool matrix once,
//   2. measure the speedup of the Table II plan of every possible class set
//      once per matrix,
//   3. exhaustively search the threshold grid; each point is scored by the
//      average speedup of the plans its classifications select.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "report/environment.hpp"
#include "support/env.hpp"
#include "gen/suite.hpp"
#include "classify/profile_classifier.hpp"
#include "gen/generators.hpp"
#include "ml/search.hpp"
#include "optimize/optimizers.hpp"
#include "support/table.hpp"

namespace {

using namespace spmvopt;

struct MatrixRecord {
  perf::PerfBounds bounds;
  // Speedup over baseline for the Table II plan of every class-set value
  // (indexed by ClassSet::bits(), 0..15).
  std::array<double, 16> speedup_by_classes{};
};

}  // namespace

int main() {
  report::print_host_preamble(
      "Grid search: profile-classifier thresholds (Fig. 4 caption protocol)");

  const int pool_size = quick_mode() ? 24 : 60;
  perf::BoundsConfig bcfg;
  bcfg.measure.iterations = quick_mode() ? 4 : 12;
  bcfg.measure.runs = 2;
  bcfg.measure.warmup = 1;
  const perf::MeasureConfig m = bcfg.measure;

  std::printf("profiling %d pool matrices and measuring all class plans...\n",
              pool_size);
  std::vector<MatrixRecord> records;
  for (const auto& entry : gen::training_pool(pool_size)) {
    const CsrMatrix a = entry.make();
    MatrixRecord rec;
    rec.bounds = perf::measure_bounds(a, bcfg);

    const auto baseline = optimize::OptimizedSpmv::create(a, optimize::Plan{});
    const double base = optimize::measure_spmv_gflops(baseline, a, m);
    std::map<std::string, double> plan_cache;  // distinct plans only
    for (unsigned bits = 0; bits < 16; ++bits) {
      const auto plan = optimize::plan_for_classes(classify::ClassSet(bits), a);
      const std::string key = plan.to_string();
      auto it = plan_cache.find(key);
      if (it == plan_cache.end()) {
        const auto spmv = optimize::OptimizedSpmv::create(a, plan);
        it = plan_cache.emplace(key,
                                optimize::measure_spmv_gflops(spmv, a, m) / base)
                 .first;
      }
      rec.speedup_by_classes[bits] = it->second;
    }
    records.push_back(rec);
    std::fflush(stdout);
  }

  // Score one threshold triple: average speedup of the selected plans.
  auto score = [&records](const std::vector<double>& v) {
    classify::ProfileParams p;
    p.t_ml = v[0];
    p.t_imb = v[1];
    p.t_cmp = v[2];
    double sum = 0.0;
    for (const MatrixRecord& rec : records) {
      const auto cls = classify::classify_from_bounds(rec.bounds, p);
      sum += rec.speedup_by_classes[cls.bits()];
    }
    return sum / static_cast<double>(records.size());
  };

  const std::vector<double> t_axis{1.00, 1.05, 1.10, 1.15, 1.20, 1.25,
                                   1.30, 1.40, 1.50, 1.75, 2.00};
  const auto best = ml::grid_search({t_axis, t_axis, t_axis}, score);

  std::printf("\nbest thresholds on this host: T_ML=%.2f T_IMB=%.2f T_CMP=%.2f"
              " (avg speedup %.3fx)\n",
              best.values[0], best.values[1], best.values[2], best.score);
  classify::ProfileParams dflt;
  std::printf("library defaults:             T_ML=%.2f T_IMB=%.2f T_CMP=%.2f"
              " (avg speedup %.3fx)\n",
              dflt.t_ml, dflt.t_imb, dflt.t_cmp,
              score({dflt.t_ml, dflt.t_imb, dflt.t_cmp}));
  std::printf("paper's published values:     T_ML=1.25 T_IMB=1.24\n\n");

  // A T_CMP slice through the grid at the paper's T_ML/T_IMB, showing the
  // sensitivity that motivated the added guard.
  Table table({"T_CMP", "avg_speedup"});
  for (double t : t_axis)
    table.add_row({Table::num(t, 2), Table::num(score({1.25, 1.24, t}), 3)});
  table.print(std::cout);
  return 0;
}
